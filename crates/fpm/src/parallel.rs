//! Thread-parallel vertical mining.
//!
//! The paper's DivExplorer "does not enforce parallel execution" (§6.5);
//! this backend shows the exploration parallelizes naturally: each frequent
//! item's subtree of the search space is independent given the shared
//! vertical representation, so subtrees are distributed over a scoped
//! thread pool with work-stealing-free static partitioning (round-robin by
//! root, which balances well because item frequencies are interleaved).
//!
//! Each worker streams its subtrees into a thread-local
//! [`ItemsetArena`]; the arenas are merged at join, sorted canonically,
//! and replayed into the caller's sink. Because emission happens after
//! the parallel search completes, [`ItemsetSink::wants_extensions`] is
//! *not* consulted during the search — a sink needing suppression must
//! filter in `emit` (see the [`crate::sink`] contract).
//!
//! When the run's payloads lower into [`ClassMasks`] (see
//! [`crate::masks`]), each worker runs the [`crate::dense`] popcount
//! engine with its own buffer [`crate::dense::Pool`] over root nodes
//! built once and shared read-only; otherwise the workers fall back to
//! merge-based tid-list subtrees. Both paths honor the same shared
//! limits.
//!
//! Results are identical to [`crate::eclat`] up to output order (the public
//! [`mine`] sorts canonically, and the differential tests enforce equality).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::time::Instant;

use crate::arena::ItemsetArena;
use crate::budget::{Budget, CancelToken, Completeness, TruncationReason};
use crate::dense;
use crate::itemset::FrequentItemset;
use crate::masks::ClassMasks;
use crate::payload::Payload;
use crate::sink::ItemsetSink;
use crate::transaction::{ItemId, TransactionDb};
use crate::vertical;
use crate::MiningParams;

/// Mines all frequent itemsets using `n_threads` worker threads
/// (`n_threads = 1` degenerates to sequential Eclat). Output is in
/// canonical order.
///
/// # Panics
///
/// Panics if `n_threads == 0` or `payloads.len() != db.len()`.
pub fn mine<P: Payload + Send + Sync>(
    db: &TransactionDb,
    payloads: &[P],
    params: &MiningParams,
    n_threads: usize,
) -> Vec<FrequentItemset<P>> {
    mine_arena(db, payloads, params, n_threads).into_itemsets()
}

/// Streams all frequent itemsets into `sink` in canonical order.
///
/// The search itself runs on `n_threads` workers collecting into
/// per-thread arenas; `sink` receives the merged, canonically sorted
/// result. `wants_extensions` is not consulted (see the module docs).
pub fn mine_into<P: Payload + Send + Sync, S: ItemsetSink<P>>(
    db: &TransactionDb,
    payloads: &[P],
    params: &MiningParams,
    n_threads: usize,
    sink: &mut S,
) {
    let arena = mine_arena(db, payloads, params, n_threads);
    for entry in arena.iter() {
        sink.emit(entry.items, entry.support, entry.payload);
    }
}

/// Parallel mining into a canonically sorted arena — the shared engine
/// behind [`mine`] and [`mine_into`]. Exposed so callers that keep the
/// arena form (e.g. the explorer's report) skip the replay entirely.
///
/// # Panics
///
/// Panics if `n_threads == 0`, `payloads.len() != db.len()`, or a worker
/// subtree panics (use [`mine_arena_bounded`] for contained degradation).
pub fn mine_arena<P: Payload + Send + Sync>(
    db: &TransactionDb,
    payloads: &[P],
    params: &MiningParams,
    n_threads: usize,
) -> ItemsetArena<P> {
    let (arena, completeness) =
        mine_arena_bounded(db, payloads, params, n_threads, &Budget::unlimited(), None);
    if completeness.truncation_reason() == Some(TruncationReason::WorkerPanic) {
        panic!("worker panicked");
    }
    arena
}

/// Atomic encoding of `Option<TruncationReason>` (0 = none); first trip
/// wins so the verdict names the limit that actually stopped the run.
fn encode(reason: TruncationReason) -> u8 {
    match reason {
        TruncationReason::Timeout => 1,
        TruncationReason::ItemsetLimit => 2,
        TruncationReason::MemoryLimit => 3,
        TruncationReason::DepthLimit => 4,
        TruncationReason::Cancelled => 5,
        TruncationReason::WorkerPanic => 6,
    }
}

fn decode(code: u8) -> Option<TruncationReason> {
    Some(match code {
        1 => TruncationReason::Timeout,
        2 => TruncationReason::ItemsetLimit,
        3 => TruncationReason::MemoryLimit,
        4 => TruncationReason::DepthLimit,
        5 => TruncationReason::Cancelled,
        6 => TruncationReason::WorkerPanic,
        _ => return None,
    })
}

/// Budget state shared by all workers. Kept separate from the sink
/// machinery: here enforcement is global (the caps bound the *merged*
/// result, not each worker's shard). Also reused by [`crate::sharded`],
/// whose two phases poll the same stop flag and byte pool.
pub(crate) struct SharedLimits<'a> {
    stop: AtomicBool,
    reason: AtomicU8,
    emitted: AtomicU64,
    bytes: AtomicU64,
    pub(crate) panicked: AtomicUsize,
    pub(crate) depth_pruned: AtomicBool,
    deadline: Option<Instant>,
    cancel: Option<&'a CancelToken>,
    max_itemsets: Option<u64>,
    max_bytes: Option<u64>,
}

impl<'a> SharedLimits<'a> {
    /// Fresh limits for a run that began at `start`.
    pub(crate) fn new(
        budget: &Budget,
        cancel: Option<&'a CancelToken>,
        start: Instant,
    ) -> SharedLimits<'a> {
        SharedLimits {
            stop: AtomicBool::new(false),
            reason: AtomicU8::new(0),
            emitted: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            panicked: AtomicUsize::new(0),
            depth_pruned: AtomicBool::new(false),
            deadline: budget.timeout.map(|t| start + t),
            cancel,
            max_itemsets: budget.max_itemsets,
            max_bytes: budget.max_bytes,
        }
    }

    pub(crate) fn trip(&self, reason: TruncationReason) {
        let _ =
            self.reason
                .compare_exchange(0, encode(reason), Ordering::Relaxed, Ordering::Relaxed);
        self.stop.store(true, Ordering::Relaxed);
    }

    pub(crate) fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Re-checks the cancel token and deadline; true iff the run is over.
    pub(crate) fn poll(&self) -> bool {
        if self.stopped() {
            return true;
        }
        if self.cancel.is_some_and(CancelToken::is_cancelled) {
            self.trip(TruncationReason::Cancelled);
            return true;
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            self.trip(TruncationReason::Timeout);
            return true;
        }
        false
    }

    /// Claims one emission slot of `n_items` items; `false` means a cap
    /// is exhausted and the itemset must not be stored. With no caps set
    /// this takes no atomic at all (the unbounded fast path).
    pub(crate) fn admit(&self, n_items: usize) -> bool {
        self.admit_count() && self.admit_bytes(n_items)
    }

    /// Claims one slot against the itemset-count cap only.
    pub(crate) fn admit_count(&self) -> bool {
        if let Some(max) = self.max_itemsets {
            if self.emitted.fetch_add(1, Ordering::Relaxed) >= max {
                self.trip(TruncationReason::ItemsetLimit);
                return false;
            }
        }
        true
    }

    /// Claims the storage cost of one `n_items`-item itemset against the
    /// byte cap only.
    pub(crate) fn admit_bytes(&self, n_items: usize) -> bool {
        if let Some(max) = self.max_bytes {
            let cost = (n_items * std::mem::size_of::<ItemId>() + 24) as u64;
            if self.bytes.fetch_add(cost, Ordering::Relaxed) + cost > max {
                self.trip(TruncationReason::MemoryLimit);
                return false;
            }
        }
        true
    }

    /// Resolves the run's truncation reason: an explicitly tripped limit
    /// wins, then worker panics, then silent depth pruning.
    pub(crate) fn resolve_reason(&self) -> Option<TruncationReason> {
        decode(self.reason.load(Ordering::Relaxed))
            .or_else(|| {
                (self.panicked.load(Ordering::Relaxed) > 0).then_some(TruncationReason::WorkerPanic)
            })
            .or_else(|| {
                self.depth_pruned
                    .load(Ordering::Relaxed)
                    .then_some(TruncationReason::DepthLimit)
            })
    }
}

/// Worker-local sink adapting the [`crate::dense`] engine's streaming
/// hooks to the shared limits: `emit` admits into the worker's arena,
/// `wants_extensions` enforces the budget's depth cap, and `should_stop`
/// polls time-based limits every 64 nodes (mirroring the tid-list path).
struct DenseWorkerSink<'a, 'b, P: Payload> {
    shared: &'a SharedLimits<'b>,
    arena: ItemsetArena<P>,
    ticks: u32,
    depth_cap: usize,
}

impl<P: Payload> ItemsetSink<P> for DenseWorkerSink<'_, '_, P> {
    fn emit(&mut self, items: &[ItemId], support: u64, payload: &P) {
        if self.shared.stopped() || !self.shared.admit(items.len()) {
            return;
        }
        self.arena.push(items, support, payload.clone());
    }

    fn wants_extensions(&mut self, items: &[ItemId], _support: u64) -> bool {
        if items.len() >= self.depth_cap {
            // The budget's depth cap (not the caller's max_len) gated
            // this subtree: the result may be missing deeper itemsets.
            self.shared.depth_pruned.store(true, Ordering::Relaxed);
            return false;
        }
        !self.shared.stopped()
    }

    fn should_stop(&mut self) -> bool {
        self.ticks = self.ticks.wrapping_add(1);
        if self.ticks & 63 == 0 {
            self.shared.poll()
        } else {
            self.shared.stopped()
        }
    }
}

/// Joins the worker shards; a panic that escaped the per-root
/// `catch_unwind` (e.g. in the loop glue) loses that worker's shard but
/// still degrades gracefully.
fn join_workers<'scope, P: Payload>(
    handles: Vec<std::thread::ScopedJoinHandle<'scope, ItemsetArena<P>>>,
    shared: &SharedLimits<'_>,
) -> Vec<ItemsetArena<P>> {
    handles
        .into_iter()
        .filter_map(|handle| match handle.join() {
            Ok(local) => Some(local),
            Err(_) => {
                shared.panicked.fetch_add(1, Ordering::Relaxed);
                None
            }
        })
        .collect()
}

/// Parallel mining under a [`Budget`] and optional [`CancelToken`],
/// returning the merged (canonically sorted) partial result and its
/// [`Completeness`] verdict.
///
/// Enforcement is global across workers: the itemset/byte caps bound the
/// merged result, every worker honors the deadline and the token at
/// per-node checkpoints, and each root subtree runs under
/// `catch_unwind`, so one poisoned shard degrades the run (verdict
/// [`TruncationReason::WorkerPanic`], that subtree's itemsets missing)
/// instead of aborting it. Never panics on exhaustion; the returned
/// arena always holds every itemset admitted before the cut.
///
/// Note that [`crate::ItemsetSink::wants_extensions`]-style sink pruning
/// still does not apply here (see the module docs) — budgets are the
/// supported way to bound this engine.
///
/// # Panics
///
/// Panics if `n_threads == 0` or `payloads.len() != db.len()` (caller
/// bugs, not resource conditions).
pub fn mine_arena_bounded<P: Payload + Send + Sync>(
    db: &TransactionDb,
    payloads: &[P],
    params: &MiningParams,
    n_threads: usize,
    budget: &Budget,
    cancel: Option<&CancelToken>,
) -> (ItemsetArena<P>, Completeness) {
    assert!(n_threads > 0, "need at least one thread");
    assert_eq!(payloads.len(), db.len(), "payload length mismatch");
    let start = Instant::now();
    let threshold = params.threshold();
    let max_len = params.max_len.unwrap_or(usize::MAX);
    let depth_cap = budget.max_depth.unwrap_or(usize::MAX);
    if max_len == 0 || depth_cap == 0 || db.is_empty() {
        return (ItemsetArena::new(), Completeness::Complete);
    }

    let mine_span = obs::span("fpm.parallel.mine");
    obs::counter("fpm.workers", n_threads as u64);
    // Request context is thread-local; hand the caller's to each worker
    // so their telemetry stays attributable to the originating request.
    let req_token = obs::request_token();
    let shared = SharedLimits::new(budget, cancel, start);
    let shared = &shared;

    let locals: Vec<ItemsetArena<P>> = if let Some(masks) = ClassMasks::build(payloads) {
        // Dense path: popcount counting against the shared class masks.
        // Root nodes are built once and shared read-only; each worker has
        // its own buffer pool, stats, and arena.
        let ctx = dense::Ctx {
            masks: &masks,
            threshold,
            max_len,
            n_rows: db.len(),
            config: dense::Config::default(),
        };
        let mut root_pool = dense::Pool::new();
        let mut root_stats = dense::EngineStats::default();
        let roots = dense::build_roots(db, &ctx, &mut root_pool, &mut root_stats);
        root_stats.publish(&root_pool);
        let (roots, ctx) = (&roots, &ctx);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n_threads);
            for worker in 0..n_threads {
                handles.push(scope.spawn(move || {
                    let _req = req_token.adopt();
                    let mut pool = dense::Pool::new();
                    let mut stats = dense::EngineStats::default();
                    let mut prefix: Vec<ItemId> = Vec::new();
                    let mut sink = DenseWorkerSink {
                        shared,
                        arena: ItemsetArena::new(),
                        ticks: 0,
                        depth_cap,
                    };
                    // Round-robin partition of the root items.
                    let mut pos = worker;
                    while pos < roots.len() {
                        if shared.poll() {
                            break;
                        }
                        // Contain a poisoned subtree: record the panic,
                        // drop whatever state it left in `prefix`, keep
                        // mining the worker's remaining roots.
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            dense::extend(
                                ctx,
                                roots,
                                pos,
                                &mut prefix,
                                &mut pool,
                                &mut stats,
                                &mut sink,
                            )
                        }));
                        if outcome.is_err() {
                            shared.panicked.fetch_add(1, Ordering::Relaxed);
                            prefix.clear();
                        }
                        pos += n_threads;
                    }
                    // One batched publish per worker, so a lock-holding
                    // recorder never serializes the workers.
                    stats.publish(&pool);
                    sink.arena
                }));
            }
            join_workers(handles, shared)
        })
    } else {
        // Merge path: shared vertical representation, per-tid payload
        // merges.
        let tid_build = obs::span("fpm.eclat.tid_build");
        let roots: Vec<(ItemId, Vec<u32>)> = vertical::tid_lists(db)
            .into_iter()
            .enumerate()
            .filter(|(_, tids)| tids.len() as u64 >= threshold)
            .map(|(item, tids)| (item as ItemId, tids))
            .collect();
        drop(tid_build);
        let roots = &roots;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n_threads);
            for worker in 0..n_threads {
                handles.push(scope.spawn(move || {
                    let _req = req_token.adopt();
                    let mut local = ItemsetArena::new();
                    let mut prefix: Vec<ItemId> = Vec::new();
                    let mut ticks = 0u32;
                    // Intersections are tallied locally and published once
                    // per worker: one facade call instead of one per node,
                    // so a lock-holding recorder never serializes the
                    // workers.
                    let mut inters = 0u64;
                    // Round-robin partition of the root items.
                    let mut pos = worker;
                    while pos < roots.len() {
                        if shared.poll() {
                            break;
                        }
                        // Contain a poisoned subtree: record the panic,
                        // drop whatever state it left in `prefix`, keep
                        // mining the worker's remaining roots.
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            subtree(
                                roots,
                                pos,
                                payloads,
                                threshold,
                                max_len,
                                depth_cap,
                                shared,
                                &mut ticks,
                                &mut inters,
                                &mut prefix,
                                &mut local,
                            )
                        }));
                        if outcome.is_err() {
                            shared.panicked.fetch_add(1, Ordering::Relaxed);
                            prefix.clear();
                        }
                        pos += n_threads;
                    }
                    obs::counter("fpm.tid_intersections", inters);
                    local
                }));
            }
            join_workers(handles, shared)
        })
    };
    drop(mine_span);

    let merge_span = obs::span("fpm.parallel.merge");
    let mut merged = ItemsetArena::new();
    for local in locals {
        merged.absorb(local);
    }
    merged.sort_canonical();
    drop(merge_span);

    obs::counter(
        "fpm.worker_panics",
        shared.panicked.load(Ordering::Relaxed) as u64,
    );
    let completeness = match shared.resolve_reason() {
        None => Completeness::Complete,
        Some(reason) => Completeness::Truncated {
            reason,
            emitted: merged.len() as u64,
            elapsed: start.elapsed(),
        },
    };
    (merged, completeness)
}

/// Sequential Eclat over the subtree rooted at `siblings[pos]`, honoring
/// the shared limits at every node.
#[allow(clippy::too_many_arguments)]
fn subtree<P: Payload>(
    siblings: &[(ItemId, Vec<u32>)],
    pos: usize,
    payloads: &[P],
    threshold: u64,
    max_len: usize,
    depth_cap: usize,
    shared: &SharedLimits<'_>,
    ticks: &mut u32,
    inters: &mut u64,
    prefix: &mut Vec<ItemId>,
    out: &mut ItemsetArena<P>,
) {
    if shared.stopped() {
        return;
    }
    // Time-based limits are re-polled every 64 nodes; the stop flag
    // (itemset/byte caps tripped by any worker) is checked every node.
    *ticks = ticks.wrapping_add(1);
    if *ticks & 63 == 0 && shared.poll() {
        return;
    }
    let (item, ref tids) = siblings[pos];
    prefix.push(item);
    let payload = vertical::sum_payloads(tids, payloads);
    if !shared.admit(prefix.len()) {
        prefix.pop();
        return;
    }
    out.push(prefix, tids.len() as u64, payload);
    if prefix.len() < max_len {
        if prefix.len() >= depth_cap {
            // The budget's depth cap (not the caller's max_len) gated
            // this subtree: the result may be missing deeper itemsets.
            shared.depth_pruned.store(true, Ordering::Relaxed);
        } else {
            let mut children: Vec<(ItemId, Vec<u32>)> = Vec::new();
            for (sib_item, sib_tids) in &siblings[pos + 1..] {
                let inter = vertical::intersect(tids, sib_tids);
                if inter.len() as u64 >= threshold {
                    children.push((*sib_item, inter));
                }
            }
            *inters += (siblings.len() - pos - 1) as u64;
            for child_pos in 0..children.len() {
                subtree(
                    &children, child_pos, payloads, threshold, max_len, depth_cap, shared, ticks,
                    inters, prefix, out,
                );
            }
        }
    }
    prefix.pop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itemset::sort_canonical;
    use crate::payload::CountPayload;
    use crate::sink::VecSink;
    use crate::{Algorithm, MiningTask};

    fn db() -> TransactionDb {
        let rows: Vec<Vec<u32>> = (0..40)
            .map(|t| {
                let mut row = vec![t % 5];
                if t % 2 == 0 {
                    row.push(5);
                }
                if t % 3 == 0 {
                    row.push(6);
                }
                row
            })
            .collect();
        TransactionDb::from_rows(7, &rows)
    }

    #[test]
    fn parallel_matches_sequential_for_any_thread_count() {
        let db = db();
        let payloads: Vec<CountPayload> = (0..db.len()).map(|t| CountPayload(t as u64)).collect();
        let params = MiningParams::with_min_support_count(3);
        let mut reference = MiningTask::with_params(&db, params.clone())
            .payloads(&payloads)
            .algorithm(Algorithm::Eclat)
            .run()
            .into_itemsets();
        sort_canonical(&mut reference);
        for n_threads in [1, 2, 3, 8] {
            let got = mine(&db, &payloads, &params, n_threads);
            assert_eq!(got, reference, "n_threads={n_threads}");
        }
    }

    #[test]
    fn sink_path_replays_the_canonical_order() {
        let db = db();
        let payloads: Vec<CountPayload> = (0..db.len()).map(|t| CountPayload(t as u64)).collect();
        let params = MiningParams::with_min_support_count(3);
        let expected = mine(&db, &payloads, &params, 4);
        let mut sink = VecSink::new();
        mine_into(&db, &payloads, &params, 4, &mut sink);
        assert_eq!(sink.found, expected);
    }

    #[test]
    fn respects_max_len_and_thresholds() {
        let db = db();
        let params = MiningParams::with_min_support_count(5).max_len(2);
        let found = mine(&db, &vec![(); db.len()], &params, 4);
        assert!(found.iter().all(|fi| fi.items.len() <= 2));
        assert!(found.iter().all(|fi| fi.support >= 5));
    }

    #[test]
    fn more_threads_than_roots_is_fine() {
        let db = TransactionDb::from_rows(2, &[vec![0], vec![1], vec![0, 1]]);
        let params = MiningParams::with_min_support_count(1);
        let found = mine(&db, &[(); 3], &params, 16);
        assert_eq!(found.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let db = db();
        let _ = mine(
            &db,
            &vec![(); db.len()],
            &MiningParams::with_min_support_count(1),
            0,
        );
    }

    #[test]
    fn unlimited_bounded_run_is_complete_and_identical() {
        let db = db();
        let payloads: Vec<CountPayload> = (0..db.len()).map(|t| CountPayload(t as u64)).collect();
        let params = MiningParams::with_min_support_count(2);
        let plain = mine(&db, &payloads, &params, 4);
        let (arena, completeness) =
            mine_arena_bounded(&db, &payloads, &params, 4, &Budget::unlimited(), None);
        assert_eq!(completeness, Completeness::Complete);
        assert_eq!(arena.into_itemsets(), plain);
    }

    #[test]
    fn itemset_cap_yields_a_subset_with_exact_supports() {
        let db = db();
        let payloads: Vec<CountPayload> = (0..db.len()).map(|t| CountPayload(t as u64)).collect();
        let params = MiningParams::with_min_support_count(1);
        let full = mine(&db, &payloads, &params, 4);
        assert!(full.len() > 5);
        let budget = Budget::unlimited().with_max_itemsets(5);
        let (arena, completeness) = mine_arena_bounded(&db, &payloads, &params, 3, &budget, None);
        assert_eq!(
            completeness.truncation_reason(),
            Some(TruncationReason::ItemsetLimit)
        );
        let partial = arena.into_itemsets();
        assert_eq!(partial.len(), 5);
        for fi in &partial {
            let reference = full
                .iter()
                .find(|r| r.items == fi.items)
                .expect("partial result must be a subset of the full run");
            assert_eq!(
                (fi.support, fi.payload),
                (reference.support, reference.payload)
            );
        }
    }

    #[test]
    fn fired_token_stops_all_workers() {
        let db = db();
        let params = MiningParams::with_min_support_count(1);
        let token = CancelToken::new();
        token.cancel();
        let (arena, completeness) = mine_arena_bounded(
            &db,
            &vec![(); db.len()],
            &params,
            4,
            &Budget::unlimited(),
            Some(&token),
        );
        assert_eq!(
            completeness.truncation_reason(),
            Some(TruncationReason::Cancelled)
        );
        assert!(arena.len() < mine(&db, &vec![(); db.len()], &params, 4).len());
    }

    #[test]
    fn depth_cap_bounds_lengths_and_reports() {
        let db = db();
        let params = MiningParams::with_min_support_count(1);
        let budget = Budget::unlimited().with_max_depth(1);
        let (arena, completeness) =
            mine_arena_bounded(&db, &vec![(); db.len()], &params, 4, &budget, None);
        assert_eq!(
            completeness.truncation_reason(),
            Some(TruncationReason::DepthLimit)
        );
        assert!(arena.iter().all(|e| e.items.len() <= 1));
    }

    /// A payload whose merge panics on a poisoned transaction, simulating
    /// a corrupted shard.
    #[derive(Debug, Clone, PartialEq)]
    struct Poison(bool);
    impl Payload for Poison {
        fn zero() -> Self {
            Poison(false)
        }
        fn merge(&mut self, other: &Self) {
            assert!(!other.0, "poisoned payload");
        }
    }

    #[test]
    fn poisoned_shard_degrades_instead_of_aborting() {
        let db = db();
        // Poison one transaction: every subtree whose tid-list covers it
        // panics in sum_payloads; the rest of the lattice must survive.
        let payloads: Vec<Poison> = (0..db.len()).map(|t| Poison(t == 0)).collect();
        let params = MiningParams::with_min_support_count(1);
        let (arena, completeness) =
            mine_arena_bounded(&db, &payloads, &params, 4, &Budget::unlimited(), None);
        assert_eq!(
            completeness.truncation_reason(),
            Some(TruncationReason::WorkerPanic)
        );
        // Transaction 0 is {0, 5, 6}; subtrees rooted at items untouched
        // by it still produce results.
        assert!(!arena.is_empty());
    }

    #[test]
    fn unbounded_wrapper_still_panics_on_worker_panic() {
        let db = db();
        let payloads: Vec<Poison> = (0..db.len()).map(|t| Poison(t == 0)).collect();
        let outcome = std::panic::catch_unwind(|| {
            mine_arena(&db, &payloads, &MiningParams::with_min_support_count(1), 2)
        });
        assert!(outcome.is_err());
    }
}
