//! Sharded two-pass (Partition-style) mining.
//!
//! The classic Savasere–Omiecinski–Navathe partition scheme, adapted to
//! payload-fused mining: split the transaction table into `K` horizontal
//! row shards, mine each shard independently at a *proportionally scaled*
//! local threshold (phase 1), union the local frequent itemsets into one
//! global candidate arena, then stream the shards once more and recount
//! every candidate exactly (phase 2). Because supports and [`Payload`]
//! aggregates are additive over disjoint row subsets, summing the
//! per-shard recounts yields the exact global tallies.
//!
//! **Soundness and completeness.** Let `T` be the global threshold over
//! `N` rows and give shard `k` (holding `n_k` rows) the local threshold
//! `t_k = max(1, ceil(T·n_k/N))`. If an itemset is locally infrequent in
//! *every* shard, its global support is at most `Σ_k (t_k − 1) < T`
//! (since `Σ_k t_k < T + K`), so every globally frequent itemset is
//! locally frequent in at least one shard and survives into the
//! candidate union — phase 1 loses nothing. Phase 2 computes exact
//! global supports and payloads for every candidate and keeps exactly
//! those meeting `T`, discarding the false positives phase 1 admitted.
//!
//! **Memory model.** Phase 1 workers hold one shard each plus their local
//! candidate arenas; phase 2 is sequential and holds exactly one shard at
//! a time plus the candidate arena and its accumulators. With a
//! [`ShardSource`] that re-reads rows from storage (e.g. a CSV window
//! reader), peak residency is one shard + the candidate arena, not the
//! whole table.
//!
//! **Budgets.** The run is coordinated through the same shared-limit
//! machinery as [`crate::parallel`]: the deadline and cancel token are
//! polled in both phases, `max_bytes` bounds the candidate arena,
//! `max_itemsets` bounds the final emission, and `max_depth` caps the
//! candidate lattice depth. A budget that expires *before* the recount
//! finishes yields an **empty** truncated result — partially recounted
//! supports would violate the contract that every emitted itemset carries
//! exact tallies — and [`ShardStats::truncated_phase`] records which
//! phase was cut. An `ItemsetLimit` tripped during the final emission
//! still yields a sound prefix with exact counts (phase `None`).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use crate::arena::ItemsetArena;
use crate::bitset_eclat::Bitset;
use crate::budget::{Budget, CancelToken, Completeness, TruncationReason};
use crate::dense;
use crate::kernels::{self, AlignedWords};
use crate::masks::ClassMasks;
use crate::parallel::SharedLimits;
use crate::payload::Payload;
use crate::sink::ItemsetSink;
use crate::transaction::{ItemId, TransactionDb, TransactionDbBuilder};
use crate::MiningParams;

/// Shard count used when [`crate::Algorithm::Sharded`] is selected
/// without an explicit `K` (e.g. via [`crate::MiningTask::algorithm`]).
pub const DEFAULT_SHARDS: usize = 4;

/// Which phase of a sharded run a budget cut interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPhase {
    /// Phase 1: per-shard candidate mining.
    Mine,
    /// Phase 2: the exact recount pass over the shards.
    Recount,
}

impl std::fmt::Display for ShardPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ShardPhase::Mine => "mine",
            ShardPhase::Recount => "recount",
        })
    }
}

/// Telemetry of one sharded run, returned alongside its
/// [`Completeness`] verdict.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Configured shard count `K`.
    pub n_shards: usize,
    /// Shards whose candidate mining completed in phase 1.
    pub shards_mined: u64,
    /// Size of the deduplicated candidate union.
    pub candidates: u64,
    /// Rows streamed by the recount pass (phase 2).
    pub recount_rows: u64,
    /// Wall-clock of phase 1 in microseconds.
    pub mine_us: u64,
    /// Wall-clock of phase 2 (recount + emission) in microseconds.
    pub recount_us: u64,
    /// Peak *resident* shard footprint (bytes, CSR rows + payloads):
    /// the maximum over time of the summed size of every concurrently
    /// loaded shard — parallel workers and prefetched shards all count
    /// while resident, not just the largest single shard.
    pub peak_shard_bytes: u64,
    /// Footprint of the candidate arena (bytes). Peak residency of the
    /// run is `peak_shard_bytes + candidate_bytes`.
    pub candidate_bytes: u64,
    /// Time counting threads spent acquiring shards during phase 2
    /// (µs, summed across workers): inline materialize time when
    /// self-loading, blocked queue-pop time under prefetch. Low values
    /// mean IO was hidden behind compute.
    pub io_wait_us: u64,
    /// Decoded (resident CSR + payload) bytes streamed through phase 2.
    pub streamed_bytes: u64,
    /// Encoded bytes read from the backing store during phase 2, summed
    /// from [`ShardSource::size_hint`]. `0` when the source doesn't
    /// report encoded sizes (e.g. in-memory sources).
    pub compressed_bytes: u64,
    /// The phase a budget cut interrupted, if any. `None` for complete
    /// runs *and* for truncations that still emitted a sound prefix
    /// (itemset cap at emission, depth-capped candidates).
    pub truncated_phase: Option<ShardPhase>,
}

impl ShardStats {
    /// Fraction of the recount phase *not* stalled on shard IO:
    /// `1 − io_wait_us / recount_us`, clamped to `[0, 1]`. `1.0` when
    /// no recount ran.
    pub fn overlap_ratio(&self) -> f64 {
        if self.recount_us == 0 {
            return 1.0;
        }
        (1.0 - self.io_wait_us as f64 / self.recount_us as f64).clamp(0.0, 1.0)
    }

    /// How much smaller the encoded shards are than their decoded CSR
    /// form: `streamed_bytes / compressed_bytes`. `None` when the source
    /// reported no encoded sizes.
    pub fn compression_ratio(&self) -> Option<f64> {
        if self.compressed_bytes == 0 {
            return None;
        }
        Some(self.streamed_bytes as f64 / self.compressed_bytes as f64)
    }
}

/// Tracks the summed footprint of all concurrently resident shards and
/// its high-water mark — the honest form of
/// [`ShardStats::peak_shard_bytes`] now that workers and the prefetch
/// queue hold several shards at once.
#[derive(Default)]
struct ResidentGauge {
    current: AtomicU64,
    peak: AtomicU64,
}

impl ResidentGauge {
    fn add(&self, bytes: u64) {
        let now = self.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    fn sub(&self, bytes: u64) {
        self.current.fetch_sub(bytes, Ordering::Relaxed);
    }

    fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// One materialized horizontal shard: a contiguous row window of the
/// global table, re-rooted at row 0, with its payload slice.
#[derive(Debug, Clone)]
pub struct Shard<P> {
    /// Global index of the shard's first row.
    pub start_row: usize,
    /// The shard's rows as a transaction table over the *global* item
    /// universe (`n_items` must match across shards).
    pub db: TransactionDb,
    /// One payload per shard row.
    pub payloads: Vec<P>,
}

impl<P> Shard<P> {
    /// Approximate resident size of this shard in bytes (CSR items +
    /// offsets + payloads).
    pub fn approx_bytes(&self) -> u64 {
        (self.db.total_item_occurrences() * std::mem::size_of::<ItemId>()
            + (self.db.len() + 1) * std::mem::size_of::<usize>()
            + self.payloads.len() * std::mem::size_of::<P>()) as u64
    }
}

/// An opened-but-not-yet-materialized shard: the ticket returned by
/// [`ShardSource::open`].
///
/// Handles are owned and `Send`, so the pipeline can open a shard on the
/// coordinating thread and perform the actual IO/decode on whichever
/// worker or prefetch thread consumes the ticket. [`materialize`]
/// consumes the handle; a handle is good for exactly one load.
///
/// [`materialize`]: ShardHandle::materialize
pub trait ShardHandle<P: Payload>: Send {
    /// Performs the load/decode, producing the shard's rows.
    fn materialize(self: Box<Self>) -> Shard<P>;
}

/// Wraps a closure as a [`ShardHandle`] — the one-line migration path
/// for sources whose load is a plain function of `(source, k)`.
struct FnShardHandle<F>(F);

impl<P, F> ShardHandle<P> for FnShardHandle<F>
where
    P: Payload,
    F: FnOnce() -> Shard<P> + Send,
{
    fn materialize(self: Box<Self>) -> Shard<P> {
        (self.0)()
    }
}

/// Boxes a `Send` closure into a [`ShardHandle`]; the returned handle
/// borrows whatever the closure captures (typically the source).
pub fn handle_from_fn<'f, P, F>(f: F) -> Box<dyn ShardHandle<P> + 'f>
where
    P: Payload,
    F: FnOnce() -> Shard<P> + Send + 'f,
{
    Box::new(FnShardHandle(f))
}

/// Where the two passes pull shards from: an in-memory table
/// ([`MemShardSource`]) or re-read storage (e.g.
/// `datasets::csv::CsvShardSource`), so the recount pass never needs the
/// whole table resident.
///
/// Implementations must be deterministic — both phases may open the same
/// shard, and phase 2 relies on seeing exactly the rows phase 1 mined.
/// Every shard's `db` must share one item universe.
pub trait ShardSource<P: Payload>: Sync {
    /// Number of shards `K`. Shards may be empty.
    fn n_shards(&self) -> usize;
    /// Total rows across all shards.
    fn n_rows(&self) -> usize;
    /// Opens shard `k` (`k < n_shards()`): returns an owned ticket whose
    /// [`ShardHandle::materialize`] performs the actual IO/decode, on
    /// whichever thread the recount pipeline schedules it.
    fn open(&self, k: usize) -> Box<dyn ShardHandle<P> + '_>;
    /// Encoded (on-storage) footprint of shard `k` in bytes, if the
    /// backing store knows it. `None` for purely in-memory sources; a
    /// compressed source reports its compressed section size, which
    /// feeds [`ShardStats`] compression accounting.
    fn size_hint(&self, _k: usize) -> Option<u64> {
        None
    }
    /// Materializes shard `k` eagerly on the calling thread.
    #[deprecated(note = "use `open(k).materialize()` — the handle form lets the \
                         recount pipeline schedule IO off the counting threads")]
    fn load(&self, k: usize) -> Shard<P> {
        self.open(k).materialize()
    }
}

/// A [`ShardSource`] over an in-memory table: `K` balanced contiguous
/// row windows, copied out on `load`.
#[derive(Debug, Clone, Copy)]
pub struct MemShardSource<'a, P> {
    db: &'a TransactionDb,
    payloads: &'a [P],
    n_shards: usize,
}

impl<'a, P: Payload> MemShardSource<'a, P> {
    /// Splits `db` into `n_shards` balanced row windows.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards == 0` or `payloads.len() != db.len()`.
    pub fn new(db: &'a TransactionDb, payloads: &'a [P], n_shards: usize) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        assert_eq!(
            payloads.len(),
            db.len(),
            "payload slice length must match transaction count"
        );
        MemShardSource {
            db,
            payloads,
            n_shards,
        }
    }

    /// Row window `[lo, hi)` of shard `k`. With `K > n_rows` the trailing
    /// shards are empty.
    fn bounds(&self, k: usize) -> (usize, usize) {
        let n = self.db.len();
        (k * n / self.n_shards, (k + 1) * n / self.n_shards)
    }

    fn materialize_window(&self, k: usize) -> Shard<P> {
        let (lo, hi) = self.bounds(k);
        let mut builder = TransactionDbBuilder::new(self.db.n_items());
        for t in lo..hi {
            builder.push(self.db.transaction(t));
        }
        Shard {
            start_row: lo,
            db: builder.build(),
            payloads: self.payloads[lo..hi].to_vec(),
        }
    }
}

impl<P: Payload + Send + Sync> ShardSource<P> for MemShardSource<'_, P> {
    fn n_shards(&self) -> usize {
        self.n_shards
    }

    fn n_rows(&self) -> usize {
        self.db.len()
    }

    fn open(&self, k: usize) -> Box<dyn ShardHandle<P> + '_> {
        handle_from_fn(move || self.materialize_window(k))
    }
}

/// The local threshold of a shard: `max(1, ceil(T·n_k/N))`. See the
/// module docs for why this preserves completeness.
fn local_threshold(global: u64, shard_rows: usize, total_rows: usize) -> u64 {
    if total_rows == 0 {
        return 1;
    }
    let num = global as u128 * shard_rows as u128;
    let t = num.div_ceil(total_rows as u128) as u64;
    t.max(1)
}

/// Phase-1 sink: collects candidate itemsets (supports and payloads are
/// discarded — phase 2 recounts exactly), charging the byte cap for the
/// candidate storage and honoring the depth cap and stop flag.
struct CandidateSink<'a, 'b> {
    shared: &'a SharedLimits<'b>,
    out: ItemsetArena<()>,
    ticks: u32,
    depth_cap: usize,
}

impl ItemsetSink<()> for CandidateSink<'_, '_> {
    fn emit(&mut self, items: &[ItemId], support: u64, _payload: &()) {
        if self.shared.stopped() || !self.shared.admit_bytes(items.len()) {
            return;
        }
        self.out.push(items, support, ());
    }

    fn wants_extensions(&mut self, items: &[ItemId], _support: u64) -> bool {
        if items.len() >= self.depth_cap {
            self.shared.depth_pruned.store(true, Ordering::Relaxed);
            return false;
        }
        !self.shared.stopped()
    }

    fn should_stop(&mut self) -> bool {
        self.ticks = self.ticks.wrapping_add(1);
        if self.ticks & 63 == 0 {
            self.shared.poll()
        } else {
            self.shared.stopped()
        }
    }
}

/// Phase 1 worker: pulls shard indices off the shared counter until the
/// source is drained or the run is stopped, mining each shard's frequent
/// itemsets (unit payloads — candidates only) with the dense engine.
#[allow(clippy::too_many_arguments)]
fn mine_shard_candidates<P: Payload, C: ShardSource<P>>(
    source: &C,
    params: &MiningParams,
    shared: &SharedLimits<'_>,
    next: &AtomicUsize,
    depth_cap: usize,
    threshold: u64,
    resident: &ResidentGauge,
    shards_mined: &AtomicU64,
) -> ItemsetArena<()> {
    let total_rows = source.n_rows();
    let mut sink = CandidateSink {
        shared,
        out: ItemsetArena::new(),
        ticks: 0,
        depth_cap,
    };
    loop {
        let k = next.fetch_add(1, Ordering::Relaxed);
        if k >= source.n_shards() || shared.poll() {
            break;
        }
        let shard = source.open(k).materialize();
        let bytes = shard.approx_bytes();
        resident.add(bytes);
        if !shard.db.is_empty() {
            let local_params = MiningParams {
                min_support_count: local_threshold(threshold, shard.db.len(), total_rows),
                max_len: params.max_len,
            };
            let unit = vec![(); shard.db.len()];
            // Contain a poisoned shard: the run degrades to WorkerPanic
            // instead of aborting, same as the parallel engine.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                dense::mine_into(&shard.db, &unit, &local_params, &mut sink);
            }));
            if outcome.is_err() {
                shared.panicked.fetch_add(1, Ordering::Relaxed);
                resident.sub(bytes);
                continue;
            }
        }
        resident.sub(bytes);
        shards_mined.fetch_add(1, Ordering::Relaxed);
    }
    sink.out
}

/// Phase 2 over one shard: AND-folds per-item bitsets over the shard's
/// rows for every candidate, adding the shard's exact support and payload
/// contribution into the global accumulators.
///
/// Payload contributions go through the *shard's own* [`ClassMasks`]:
/// value-dependent specs (e.g. [`crate::CountPayload`] bit planes) can
/// differ across shards, so raw class counts must never be summed
/// globally — each shard decodes its counts into a payload first, and
/// payloads merge exactly by the monoid laws.
fn recount_shard<P: Payload>(
    shard: &Shard<P>,
    candidates: &ItemsetArena<()>,
    supports: &mut [u64],
    acc: &mut [P],
    words_anded: &mut u64,
    shared: &SharedLimits<'_>,
) -> bool {
    let n_rows = shard.db.len();
    let n_items = shard.db.n_items() as usize;
    // Per-item bitsets, built only for items some candidate mentions.
    let mut dense_ix: Vec<u32> = vec![u32::MAX; n_items];
    let mut order: Vec<ItemId> = Vec::new();
    for id in 0..candidates.len() {
        for &item in candidates.items(id) {
            if dense_ix[item as usize] == u32::MAX {
                dense_ix[item as usize] = order.len() as u32;
                order.push(item);
            }
        }
    }
    let mut bits: Vec<Bitset> = vec![Bitset::zeros(n_rows); order.len()];
    for t in 0..n_rows {
        for &item in shard.db.transaction(t) {
            let ix = dense_ix[item as usize];
            if ix != u32::MAX {
                bits[ix as usize].set(t);
            }
        }
    }
    let masks = ClassMasks::build(&shard.payloads);
    let mut counts = vec![0u64; masks.as_ref().map_or(0, ClassMasks::n_classes)];
    // Prefix-reuse AND-fold: a canonical arena visits the lattice in DFS
    // preorder, so consecutive candidates share itemset prefixes. Keep a
    // stack of partial intersections and recompute only the suffix that
    // differs from the previous candidate — amortized one in-place AND
    // per candidate instead of `len` allocating ones. A non-canonical
    // ordering stays correct (an unshared prefix just recomputes).
    let mut stack: Vec<Bitset> = Vec::new();
    let mut prev: Vec<ItemId> = Vec::new();
    let mut pool: Vec<AlignedWords> = Vec::new();
    for id in 0..candidates.len() {
        if id & 63 == 0 && shared.poll() {
            return false;
        }
        let items = candidates.items(id);
        let mut l = 0;
        while l < stack.len() && prev.get(l) == items.get(l) {
            l += 1;
        }
        while stack.len() > l {
            pool.push(stack.pop().expect("stack is non-empty").into_words());
        }
        for d in l..items.len() {
            let item_bits = &bits[dense_ix[items[d] as usize] as usize];
            let next = if d == 0 {
                item_bits.clone()
            } else {
                let mut words = pool.pop().unwrap_or_default();
                stack[d - 1].and_into(item_bits, &mut words);
                *words_anded += item_bits.n_words() as u64;
                Bitset::from_words(words)
            };
            stack.push(next);
        }
        prev.clear();
        prev.extend_from_slice(items);
        let folded = stack.last().expect("candidates are non-empty");
        let sup = folded.count();
        *words_anded += folded.n_words() as u64;
        if sup == 0 {
            continue;
        }
        supports[id] += sup;
        match &masks {
            Some(m) => {
                *words_anded += m.count_dense(folded, &mut counts);
                acc[id].merge(&m.decode::<P>(&counts));
            }
            None => {
                for t in folded.iter_ones() {
                    acc[id].merge(&shard.payloads[t]);
                }
            }
        }
    }
    true
}

/// A minimal bounded MPMC channel for the prefetch pipeline (the
/// workspace vendors no channel crate). `close` wakes all waiters once
/// the producer is done; `close_now` additionally hands back the queued
/// items so a cut run can release their resident bytes promptly.
struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

struct QueueState<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                capacity: capacity.max(1),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks while full; returns `false` (dropping nothing — the item
    /// is handed back implicitly by not enqueueing it) once closed.
    fn push(&self, item: T) -> bool {
        let mut st = self.lock();
        while st.items.len() >= st.capacity && !st.closed {
            st = self.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.closed {
            return false;
        }
        st.items.push_back(item);
        self.not_empty.notify_one();
        true
    }

    /// Blocks while empty; `None` means closed *and* drained.
    fn pop(&self) -> Option<T> {
        let mut st = self.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Producer-side close: queued items remain poppable.
    fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Consumer-side abort: closes and returns everything still queued.
    fn close_now(&self) -> Vec<T> {
        let mut st = self.lock();
        st.closed = true;
        let drained = st.items.drain(..).collect();
        drop(st);
        self.not_empty.notify_all();
        self.not_full.notify_all();
        drained
    }
}

/// One shard's recount contribution, awaiting its turn in the ordered
/// merge.
struct ShardPartial<P> {
    supports: Vec<u64>,
    acc: Vec<P>,
}

/// Merges per-shard partial tallies into the global accumulators in
/// ascending shard order, whatever order workers finish in.
///
/// This reproduces the sequential pass bit-for-bit: sequentially, shard
/// `k`'s contribution for candidate `id` is merged after shards
/// `0..k`'s and before shards `k+1..`'s, and contributions to distinct
/// candidates are independent — so replaying the per-shard partials in
/// ascending `k` performs the exact same sequence of `merge` calls per
/// candidate. The one extra step is that a worker first accumulates its
/// shard into `P::zero()`; the payload identity law
/// (`zero().merge(&x) == x`) makes that a no-op.
struct OrderedMerger<P> {
    state: Mutex<MergeState<P>>,
}

struct MergeState<P> {
    /// Next shard index awaiting its ordered merge.
    next: usize,
    /// Deposited-but-not-yet-merged partials (`None` = empty shard).
    slots: Vec<Option<ShardPartial<P>>>,
    /// Which shards have deposited.
    done: Vec<bool>,
    supports: Vec<u64>,
    acc: Vec<P>,
}

impl<P: Payload> OrderedMerger<P> {
    fn new(n_shards: usize, n_candidates: usize) -> Self {
        OrderedMerger {
            state: Mutex::new(MergeState {
                next: 0,
                slots: (0..n_shards).map(|_| None).collect(),
                done: vec![false; n_shards],
                supports: vec![0u64; n_candidates],
                acc: (0..n_candidates).map(|_| P::zero()).collect(),
            }),
        }
    }

    /// Records shard `k`'s partial and merges every shard that is now
    /// ready in order. Returns `false` if the recount must be abandoned
    /// (a payload merge panicked, poisoning the global sums).
    fn deposit(
        &self,
        k: usize,
        partial: Option<ShardPartial<P>>,
        shared: &SharedLimits<'_>,
    ) -> bool {
        let Ok(mut st) = self.state.lock() else {
            // A sibling worker panicked mid-merge; the run is already cut.
            return false;
        };
        st.done[k] = true;
        st.slots[k] = partial;
        // Catch a panicking payload merge *inside* the critical section
        // so the mutex is never poisoned by it; the run degrades to
        // WorkerPanic like every other contained panic.
        let merged = catch_unwind(AssertUnwindSafe(|| st.merge_ready()));
        if merged.is_err() {
            shared.panicked.fetch_add(1, Ordering::Relaxed);
            shared.trip(TruncationReason::WorkerPanic);
            return false;
        }
        true
    }

    fn into_results(self) -> (Vec<u64>, Vec<P>) {
        let st = self.state.into_inner().unwrap_or_else(|e| e.into_inner());
        (st.supports, st.acc)
    }
}

impl<P: Payload> MergeState<P> {
    fn merge_ready(&mut self) {
        while self.next < self.done.len() && self.done[self.next] {
            if let Some(partial) = self.slots[self.next].take() {
                for id in 0..self.supports.len() {
                    self.supports[id] += partial.supports[id];
                    self.acc[id].merge(&partial.acc[id]);
                }
            }
            self.next += 1;
        }
    }
}

/// What [`recount_pass`] hands back besides the tallies.
#[derive(Default)]
struct RecountPassStats {
    rows: u64,
    io_wait_us: u64,
    streamed_bytes: u64,
    compressed_bytes: u64,
    kernel_words: u64,
    cut: bool,
}

/// Recounts one already-materialized shard into a fresh partial and
/// deposits it. Returns `false` if the recount must be abandoned.
#[allow(clippy::too_many_arguments)]
fn process_shard<P: Payload>(
    k: usize,
    shard: &Shard<P>,
    candidates: &ItemsetArena<()>,
    merger: &OrderedMerger<P>,
    shared: &SharedLimits<'_>,
    rows: &AtomicU64,
    streamed: &AtomicU64,
    words: &mut u64,
) -> bool {
    if shard.db.is_empty() {
        // Empty shards still deposit so the ordered merge advances.
        return merger.deposit(k, None, shared);
    }
    rows.fetch_add(shard.db.len() as u64, Ordering::Relaxed);
    streamed.fetch_add(shard.approx_bytes(), Ordering::Relaxed);
    let mut partial = ShardPartial {
        supports: vec![0u64; candidates.len()],
        acc: (0..candidates.len()).map(|_| P::zero()).collect(),
    };
    // Same containment as the sequential pass: a payload merge that
    // panics poisons this shard's partial sums, so the whole recount is
    // abandoned (nothing emitted).
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        recount_shard(
            shard,
            candidates,
            &mut partial.supports,
            &mut partial.acc,
            words,
            shared,
        )
    }));
    match outcome {
        Ok(true) => merger.deposit(k, Some(partial), shared),
        Ok(false) => false,
        Err(_) => {
            shared.panicked.fetch_add(1, Ordering::Relaxed);
            shared.trip(TruncationReason::WorkerPanic);
            false
        }
    }
}

/// Phase 2 as a pipeline: recounts every shard of `source` against
/// `candidates`, spreading shards over `n_threads` workers with up to
/// `prefetch` shards loaded ahead of consumption, and returns the
/// globally merged `(supports, acc)` tallies.
///
/// With `n_threads == 1 && prefetch == 0` this is the original
/// sequential loop (one shard resident at a time, merged in place).
/// With `prefetch > 0` a dedicated loader thread materializes shards
/// in order into a bounded queue while workers count; with
/// `n_threads > 1` and no prefetch, workers self-load off a shared
/// counter. Either way the per-shard partials are merged in ascending
/// shard order (see [`OrderedMerger`]), so the tallies are bit-identical
/// to the sequential pass. A budget cut or contained panic anywhere
/// sets `cut` — the caller emits nothing, exactly as before.
fn recount_pass<P, C>(
    source: &C,
    candidates: &ItemsetArena<()>,
    n_threads: usize,
    prefetch: usize,
    shared: &SharedLimits<'_>,
    resident: &ResidentGauge,
) -> (Vec<u64>, Vec<P>, RecountPassStats)
where
    P: Payload + Send + Sync,
    C: ShardSource<P>,
{
    let n_shards = source.n_shards();
    let n_workers = n_threads.min(n_shards).max(1);
    let mut pass = RecountPassStats::default();

    if n_workers == 1 && prefetch == 0 {
        // Sequential fast path: merge in place, no partials.
        let mut supports = vec![0u64; candidates.len()];
        let mut acc: Vec<P> = (0..candidates.len()).map(|_| P::zero()).collect();
        for k in 0..n_shards {
            if shared.poll() {
                pass.cut = true;
                break;
            }
            let io_start = Instant::now();
            let opened = source.open(k);
            let encoded = source.size_hint(k).unwrap_or(0);
            let shard = match catch_unwind(AssertUnwindSafe(|| opened.materialize())) {
                Ok(shard) => shard,
                Err(_) => {
                    shared.panicked.fetch_add(1, Ordering::Relaxed);
                    shared.trip(TruncationReason::WorkerPanic);
                    pass.cut = true;
                    break;
                }
            };
            pass.io_wait_us += io_start.elapsed().as_micros() as u64;
            pass.compressed_bytes += encoded;
            let bytes = shard.approx_bytes();
            resident.add(bytes);
            if !shard.db.is_empty() {
                pass.rows += shard.db.len() as u64;
                pass.streamed_bytes += bytes;
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    recount_shard(
                        &shard,
                        candidates,
                        &mut supports,
                        &mut acc,
                        &mut pass.kernel_words,
                        shared,
                    )
                }));
                match outcome {
                    Ok(true) => {}
                    Ok(false) => {
                        resident.sub(bytes);
                        pass.cut = true;
                        break;
                    }
                    Err(_) => {
                        shared.panicked.fetch_add(1, Ordering::Relaxed);
                        shared.trip(TruncationReason::WorkerPanic);
                        resident.sub(bytes);
                        pass.cut = true;
                        break;
                    }
                }
            }
            resident.sub(bytes);
        }
        return (supports, acc, pass);
    }

    // Pipelined path.
    let cut = AtomicBool::new(false);
    let rows = AtomicU64::new(0);
    let io_wait = AtomicU64::new(0);
    let streamed = AtomicU64::new(0);
    let compressed = AtomicU64::new(0);
    let kernel_words = AtomicU64::new(0);
    let merger = OrderedMerger::new(n_shards, candidates.len());

    let mut worker_panics = 0usize;
    if prefetch == 0 {
        // Self-loading workers off a shared counter: loads overlap other
        // workers' counting.
        let next = AtomicUsize::new(0);
        let worker = || {
            let mut words = 0u64;
            loop {
                if cut.load(Ordering::Relaxed) || shared.stopped() {
                    break;
                }
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= n_shards {
                    break;
                }
                if shared.poll() {
                    cut.store(true, Ordering::Relaxed);
                    break;
                }
                let io_start = Instant::now();
                let opened = source.open(k);
                let encoded = source.size_hint(k).unwrap_or(0);
                let shard = match catch_unwind(AssertUnwindSafe(|| opened.materialize())) {
                    Ok(shard) => shard,
                    Err(_) => {
                        shared.panicked.fetch_add(1, Ordering::Relaxed);
                        shared.trip(TruncationReason::WorkerPanic);
                        cut.store(true, Ordering::Relaxed);
                        break;
                    }
                };
                io_wait.fetch_add(io_start.elapsed().as_micros() as u64, Ordering::Relaxed);
                compressed.fetch_add(encoded, Ordering::Relaxed);
                let bytes = shard.approx_bytes();
                resident.add(bytes);
                let ok = process_shard(
                    k, &shard, candidates, &merger, shared, &rows, &streamed, &mut words,
                );
                resident.sub(bytes);
                if !ok {
                    cut.store(true, Ordering::Relaxed);
                    break;
                }
            }
            kernel_words.fetch_add(words, Ordering::Relaxed);
        };
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n_workers).map(|_| scope.spawn(worker)).collect();
            for handle in handles {
                if handle.join().is_err() {
                    worker_panics += 1;
                }
            }
        });
    } else {
        // Loader + workers: a bounded queue holds up to `prefetch`
        // materialized shards ahead of consumption.
        let queue: BoundedQueue<(usize, Shard<P>)> = BoundedQueue::new(prefetch);
        let queue = &queue;
        let loader = || {
            for k in 0..n_shards {
                if cut.load(Ordering::Relaxed) || shared.stopped() {
                    break;
                }
                let opened = source.open(k);
                let encoded = source.size_hint(k).unwrap_or(0);
                let shard = match catch_unwind(AssertUnwindSafe(|| opened.materialize())) {
                    Ok(shard) => shard,
                    Err(_) => {
                        shared.panicked.fetch_add(1, Ordering::Relaxed);
                        shared.trip(TruncationReason::WorkerPanic);
                        cut.store(true, Ordering::Relaxed);
                        break;
                    }
                };
                compressed.fetch_add(encoded, Ordering::Relaxed);
                let bytes = shard.approx_bytes();
                resident.add(bytes);
                if !queue.push((k, shard)) {
                    // A worker aborted and closed the queue; the shard
                    // was dropped instead of enqueued.
                    resident.sub(bytes);
                    break;
                }
            }
            queue.close();
        };
        let worker = || {
            let mut words = 0u64;
            loop {
                let io_start = Instant::now();
                let item = queue.pop();
                io_wait.fetch_add(io_start.elapsed().as_micros() as u64, Ordering::Relaxed);
                let Some((k, shard)) = item else { break };
                let bytes = shard.approx_bytes();
                let ok = if shared.poll() || cut.load(Ordering::Relaxed) {
                    false
                } else {
                    process_shard(
                        k, &shard, candidates, &merger, shared, &rows, &streamed, &mut words,
                    )
                };
                resident.sub(bytes);
                if !ok {
                    cut.store(true, Ordering::Relaxed);
                    for (_, dropped) in queue.close_now() {
                        resident.sub(dropped.approx_bytes());
                    }
                    break;
                }
            }
            kernel_words.fetch_add(words, Ordering::Relaxed);
        };
        std::thread::scope(|scope| {
            let loader_handle = scope.spawn(loader);
            let handles: Vec<_> = (0..n_workers).map(|_| scope.spawn(worker)).collect();
            for handle in handles {
                if handle.join().is_err() {
                    worker_panics += 1;
                }
            }
            // Workers are done; anything the loader still queues after
            // this point is unreachable — close and release it.
            for (_, dropped) in queue.close_now() {
                resident.sub(dropped.approx_bytes());
            }
            if loader_handle.join().is_err() {
                worker_panics += 1;
            }
        });
    }
    if worker_panics > 0 {
        shared.panicked.fetch_add(worker_panics, Ordering::Relaxed);
        shared.trip(TruncationReason::WorkerPanic);
        cut.store(true, Ordering::Relaxed);
    }

    pass.rows = rows.load(Ordering::Relaxed);
    pass.io_wait_us = io_wait.load(Ordering::Relaxed);
    pass.streamed_bytes = streamed.load(Ordering::Relaxed);
    pass.compressed_bytes = compressed.load(Ordering::Relaxed);
    pass.kernel_words = kernel_words.load(Ordering::Relaxed);
    pass.cut = cut.load(Ordering::Relaxed);
    let (supports, acc) = merger.into_results();
    (supports, acc, pass)
}

/// Runs the full two-pass scheme over `source`, streaming the globally
/// frequent itemsets (exact supports and payloads) into `sink` in
/// canonical order.
///
/// Phase 1 distributes shards over `n_threads` workers through a shared
/// work counter (idle workers steal the next un-mined shard). Phase 2 is
/// the pipelined recount ([`recount_pass`]): `n_threads` also spreads the
/// recount across workers, and `prefetch > 0` additionally overlaps IO by
/// loading up to that many shards ahead of consumption — the tallies stay
/// bit-identical to the sequential order either way. Returns the run's
/// [`Completeness`] verdict and its [`ShardStats`].
///
/// # Panics
///
/// Panics if `n_threads == 0`.
pub fn mine_into_bounded<P, C, S>(
    source: &C,
    params: &MiningParams,
    n_threads: usize,
    prefetch: usize,
    budget: &Budget,
    cancel: Option<&CancelToken>,
    sink: &mut S,
) -> (Completeness, ShardStats)
where
    P: Payload + Send + Sync,
    C: ShardSource<P>,
    S: ItemsetSink<P>,
{
    assert!(n_threads > 0, "need at least one thread");
    let start = Instant::now();
    let threshold = params.threshold();
    let max_len = params.max_len.unwrap_or(usize::MAX);
    let depth_cap = budget.max_depth.unwrap_or(usize::MAX);
    let n_shards = source.n_shards();
    let mut stats = ShardStats {
        n_shards,
        ..ShardStats::default()
    };
    if max_len == 0 || depth_cap == 0 || source.n_rows() == 0 {
        return (Completeness::Complete, stats);
    }

    let shared = SharedLimits::new(budget, cancel, start);
    let shared = &shared;
    let next = AtomicUsize::new(0);
    let resident = ResidentGauge::default();
    let shards_mined = AtomicU64::new(0);

    // Phase 1: local candidate mining over a work-stealing shard queue.
    let mine_start = Instant::now();
    let mine_span = obs::span("fpm.sharded.mine");
    let n_workers = n_threads.min(n_shards);
    let locals: Vec<ItemsetArena<()>> = if n_workers == 1 {
        vec![mine_shard_candidates(
            source,
            params,
            shared,
            &next,
            depth_cap,
            threshold,
            &resident,
            &shards_mined,
        )]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n_workers)
                .map(|_| {
                    scope.spawn(|| {
                        mine_shard_candidates(
                            source,
                            params,
                            shared,
                            &next,
                            depth_cap,
                            threshold,
                            &resident,
                            &shards_mined,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .filter_map(|handle| match handle.join() {
                    Ok(local) => Some(local),
                    Err(_) => {
                        shared.panicked.fetch_add(1, Ordering::Relaxed);
                        None
                    }
                })
                .collect()
        })
    };
    drop(mine_span);
    stats.shards_mined = shards_mined.load(Ordering::Relaxed);
    stats.mine_us = mine_start.elapsed().as_micros() as u64;
    obs::counter("fpm.sharded.shards_mined", stats.shards_mined);
    let mine_cut = shared.stopped();

    // Candidate union: merge the local arenas, canonicalize, dedup.
    let mut all = ItemsetArena::new();
    for local in locals {
        all.absorb(local);
    }
    all.sort_canonical();
    let mut candidates: ItemsetArena<()> = ItemsetArena::new();
    for id in 0..all.len() {
        let items = all.items(id);
        if candidates.is_empty() || candidates.items(candidates.len() - 1) != items {
            candidates.push(items, 0, ());
        }
    }
    drop(all);
    stats.candidates = candidates.len() as u64;
    stats.candidate_bytes = candidates.approx_bytes();
    obs::counter("fpm.sharded.candidates_union", stats.candidates);

    // Phase 2: the pipelined exact recount.
    let mut emitted = 0u64;
    if mine_cut {
        stats.truncated_phase = Some(ShardPhase::Mine);
    } else {
        let recount_start = Instant::now();
        let recount_span = obs::span("fpm.sharded.recount");
        let (supports, acc, pass) =
            recount_pass(source, &candidates, n_threads, prefetch, shared, &resident);
        stats.recount_rows = pass.rows;
        stats.io_wait_us = pass.io_wait_us;
        stats.streamed_bytes = pass.streamed_bytes;
        stats.compressed_bytes = pass.compressed_bytes;
        obs::counter("fpm.sharded.recount_rows", stats.recount_rows);
        kernels::publish_selected(pass.kernel_words);
        if pass.cut {
            stats.truncated_phase = Some(ShardPhase::Recount);
        } else {
            // Emission: exact global filter, canonical order. Only the
            // itemset cap applies here (candidate bytes were already
            // charged in phase 1).
            for id in 0..candidates.len() {
                if supports[id] < threshold {
                    continue;
                }
                if !shared.admit_count() {
                    break;
                }
                sink.emit(candidates.items(id), supports[id], &acc[id]);
                emitted += 1;
            }
        }
        drop(recount_span);
        stats.recount_us = recount_start.elapsed().as_micros() as u64;
    }
    stats.peak_shard_bytes = resident.peak();

    let completeness = match shared.resolve_reason() {
        None => Completeness::Complete,
        Some(reason) => Completeness::Truncated {
            reason,
            emitted,
            elapsed: start.elapsed(),
        },
    };
    (completeness, stats)
}

/// Recounts a previously mined candidate lattice against `source`,
/// streaming every candidate meeting `threshold` — with exact global
/// supports and freshly accumulated payloads — into `sink` in
/// candidate-id order.
///
/// This is phase 2 of the two-pass scheme run alone. The frequent-itemset
/// lattice depends only on the dataset and the threshold; a new payload
/// vector (e.g. a different classifier's label column) only changes the
/// payload tallies. Re-analysis therefore needs exactly this streaming
/// recount, never a fresh mining phase — the invariant the on-disk
/// artifact layer is built on. Candidates must be canonical (as produced
/// by [`mine_into_bounded`] or [`ItemsetArena::sort_canonical`]) for the
/// output to be canonical; the recount itself never reorders.
///
/// A budget cut mid-recount yields an **empty** truncated result with
/// [`ShardStats::truncated_phase`] = [`ShardPhase::Recount`], matching
/// the full pipeline: partially recounted tallies are never emitted. An
/// itemset cap tripped during emission still yields a sound prefix.
///
/// `n_threads` and `prefetch` engage the same pipelined recount as
/// [`mine_into_bounded`]; `(1, 0)` is the sequential one-shard-resident
/// pass.
///
/// # Panics
///
/// Panics if `n_threads == 0`.
#[allow(clippy::too_many_arguments)]
pub fn recount_into_bounded<P, C, S>(
    source: &C,
    candidates: &ItemsetArena<()>,
    threshold: u64,
    n_threads: usize,
    prefetch: usize,
    budget: &Budget,
    cancel: Option<&CancelToken>,
    sink: &mut S,
) -> (Completeness, ShardStats)
where
    P: Payload + Send + Sync,
    C: ShardSource<P>,
    S: ItemsetSink<P>,
{
    assert!(n_threads > 0, "need at least one thread");
    let start = Instant::now();
    let threshold = threshold.max(1);
    let n_shards = source.n_shards();
    let mut stats = ShardStats {
        n_shards,
        candidates: candidates.len() as u64,
        candidate_bytes: candidates.approx_bytes(),
        ..ShardStats::default()
    };
    if candidates.is_empty() || source.n_rows() == 0 {
        return (Completeness::Complete, stats);
    }

    let shared = SharedLimits::new(budget, cancel, start);
    let shared = &shared;
    let resident = ResidentGauge::default();

    let recount_start = Instant::now();
    let recount_span = obs::span("fpm.sharded.recount");
    let (supports, acc, pass) =
        recount_pass(source, candidates, n_threads, prefetch, shared, &resident);
    stats.recount_rows = pass.rows;
    stats.io_wait_us = pass.io_wait_us;
    stats.streamed_bytes = pass.streamed_bytes;
    stats.compressed_bytes = pass.compressed_bytes;
    obs::counter("fpm.sharded.recount_rows", stats.recount_rows);
    kernels::publish_selected(pass.kernel_words);
    let mut emitted = 0u64;
    if pass.cut {
        stats.truncated_phase = Some(ShardPhase::Recount);
    } else {
        for id in 0..candidates.len() {
            if supports[id] < threshold {
                continue;
            }
            if !shared.admit_count() {
                break;
            }
            sink.emit(candidates.items(id), supports[id], &acc[id]);
            emitted += 1;
        }
    }
    drop(recount_span);
    stats.recount_us = recount_start.elapsed().as_micros() as u64;
    stats.peak_shard_bytes = resident.peak();

    let completeness = match shared.resolve_reason() {
        None => Completeness::Complete,
        Some(reason) => Completeness::Truncated {
            reason,
            emitted,
            elapsed: start.elapsed(),
        },
    };
    (completeness, stats)
}

/// Unbounded single-threaded convenience over [`mine_into_bounded`].
pub fn mine_into<P, C, S>(source: &C, params: &MiningParams, sink: &mut S) -> ShardStats
where
    P: Payload + Send + Sync,
    C: ShardSource<P>,
    S: ItemsetSink<P>,
{
    let (_, stats) = mine_into_bounded(source, params, 1, 0, &Budget::unlimited(), None, sink);
    stats
}

/// Mines an in-memory table through `n_shards` shards into an arena —
/// the convenience form mirroring [`crate::parallel::mine_arena`].
pub fn mine_arena<P: Payload + Send + Sync>(
    db: &TransactionDb,
    payloads: &[P],
    params: &MiningParams,
    n_shards: usize,
) -> ItemsetArena<P> {
    let source = MemShardSource::new(db, payloads, n_shards);
    let mut arena = ItemsetArena::new();
    mine_into(&source, params, &mut arena);
    arena
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::CountPayload;
    use crate::sink::VecSink;

    fn db() -> TransactionDb {
        let rows: Vec<Vec<u32>> = (0..40)
            .map(|t| {
                let mut row = vec![t % 5];
                if t % 2 == 0 {
                    row.push(5);
                }
                if t % 3 == 0 {
                    row.push(6);
                }
                row
            })
            .collect();
        TransactionDb::from_rows(7, &rows)
    }

    fn payloads(n: usize) -> Vec<CountPayload> {
        (0..n).map(|t| CountPayload(t as u64 % 9)).collect()
    }

    #[test]
    fn local_threshold_preserves_completeness_bound() {
        // Σ t_k ≤ T + K − 1 ⇒ an itemset missed everywhere has support < T.
        for (total, global, splits) in [(40usize, 7u64, 4usize), (13, 5, 7), (8, 8, 3)] {
            let mut sum = 0u64;
            for k in 0..splits {
                let lo = k * total / splits;
                let hi = (k + 1) * total / splits;
                sum += local_threshold(global, hi - lo, total);
            }
            // Σ t_k ≤ T + K − 1, written strictly for clippy's sake.
            assert!(sum < global + splits as u64, "{total} {global} {splits}");
        }
    }

    #[test]
    fn sharded_matches_eclat_for_various_shard_counts() {
        let db = db();
        let payloads = payloads(db.len());
        let params = MiningParams::with_min_support_count(3);
        let mut reference = crate::eclat::mine(&db, &payloads, &params);
        crate::itemset::sort_canonical(&mut reference);
        for n_shards in [1, 2, 7, 64] {
            let got = mine_arena(&db, &payloads, &params, n_shards).into_itemsets();
            assert_eq!(got, reference, "n_shards={n_shards}");
        }
    }

    #[test]
    fn work_stealing_pool_matches_sequential() {
        let db = db();
        let payloads = payloads(db.len());
        let params = MiningParams::with_min_support_count(2);
        let expected = mine_arena(&db, &payloads, &params, 5).into_itemsets();
        for n_threads in [2, 3, 8] {
            let source = MemShardSource::new(&db, &payloads, 5);
            let mut sink = VecSink::new();
            let (completeness, stats) = mine_into_bounded(
                &source,
                &params,
                n_threads,
                0,
                &Budget::unlimited(),
                None,
                &mut sink,
            );
            assert_eq!(completeness, Completeness::Complete, "threads={n_threads}");
            assert_eq!(stats.shards_mined, 5);
            assert_eq!(stats.truncated_phase, None);
            assert_eq!(sink.found, expected, "threads={n_threads}");
        }
    }

    #[test]
    fn zero_row_shards_are_harmless() {
        // K far beyond the row count: trailing shards hold zero rows.
        let db = TransactionDb::from_rows(3, &[vec![0, 1], vec![0, 2], vec![1, 2], vec![0, 1]]);
        let payloads = payloads(db.len());
        let params = MiningParams::with_min_support_count(2);
        let mut reference = crate::eclat::mine(&db, &payloads, &params);
        crate::itemset::sort_canonical(&mut reference);
        let got = mine_arena(&db, &payloads, &params, 11).into_itemsets();
        assert_eq!(got, reference);
    }

    #[test]
    fn empty_source_is_complete_and_empty() {
        let db = TransactionDb::from_rows::<Vec<u32>>(3, &[]);
        let payloads: Vec<CountPayload> = Vec::new();
        let arena = mine_arena(&db, &payloads, &MiningParams::with_min_support_count(1), 4);
        assert!(arena.is_empty());
    }

    #[test]
    fn expired_deadline_cuts_the_mine_phase_and_emits_nothing() {
        let db = db();
        let payloads = payloads(db.len());
        let params = MiningParams::with_min_support_count(1);
        let source = MemShardSource::new(&db, &payloads, 4);
        let budget = Budget::unlimited().with_timeout(std::time::Duration::ZERO);
        let mut sink = VecSink::new();
        let (completeness, stats) =
            mine_into_bounded(&source, &params, 1, 0, &budget, None, &mut sink);
        assert_eq!(
            completeness.truncation_reason(),
            Some(TruncationReason::Timeout)
        );
        assert_eq!(stats.truncated_phase, Some(ShardPhase::Mine));
        assert!(sink.found.is_empty());
    }

    /// A source that fires a cancel token on the first phase-2 open,
    /// forcing a deterministic mid-recount cut.
    struct CancelOnRecount<'a> {
        inner: MemShardSource<'a, CountPayload>,
        opens: AtomicUsize,
        token: CancelToken,
    }

    impl ShardSource<CountPayload> for CancelOnRecount<'_> {
        fn n_shards(&self) -> usize {
            self.inner.n_shards()
        }
        fn n_rows(&self) -> usize {
            self.inner.n_rows()
        }
        fn open(&self, k: usize) -> Box<dyn ShardHandle<CountPayload> + '_> {
            // Phase 1 opens every shard exactly once; the next open is
            // the recount's first.
            if self.opens.fetch_add(1, Ordering::Relaxed) == self.inner.n_shards() {
                self.token.cancel();
            }
            self.inner.open(k)
        }
    }

    #[test]
    fn cancellation_between_phases_reports_the_recount_phase() {
        let db = db();
        let payloads = payloads(db.len());
        let params = MiningParams::with_min_support_count(1);
        let token = CancelToken::new();
        let source = CancelOnRecount {
            inner: MemShardSource::new(&db, &payloads, 3),
            opens: AtomicUsize::new(0),
            token: token.clone(),
        };
        let mut sink = VecSink::new();
        let (completeness, stats) = mine_into_bounded(
            &source,
            &params,
            1,
            0,
            &Budget::unlimited(),
            Some(&token),
            &mut sink,
        );
        assert_eq!(
            completeness.truncation_reason(),
            Some(TruncationReason::Cancelled)
        );
        assert_eq!(stats.truncated_phase, Some(ShardPhase::Recount));
        assert!(sink.found.is_empty());
    }

    #[test]
    fn itemset_cap_at_emission_yields_an_exact_prefix() {
        let db = db();
        let payloads = payloads(db.len());
        let params = MiningParams::with_min_support_count(1);
        let full = mine_arena(&db, &payloads, &params, 4).into_itemsets();
        assert!(full.len() > 5);
        let source = MemShardSource::new(&db, &payloads, 4);
        let budget = Budget::unlimited().with_max_itemsets(5);
        let mut sink = VecSink::new();
        let (completeness, stats) =
            mine_into_bounded(&source, &params, 1, 0, &budget, None, &mut sink);
        assert_eq!(
            completeness.truncation_reason(),
            Some(TruncationReason::ItemsetLimit)
        );
        // The cut happened after both phases: not a phase truncation.
        assert_eq!(stats.truncated_phase, None);
        assert_eq!(sink.found.len(), 5);
        assert_eq!(sink.found, full[..5].to_vec());
    }

    #[test]
    fn recount_of_mined_candidates_matches_the_full_pipeline() {
        let db = db();
        let payloads = payloads(db.len());
        let params = MiningParams::with_min_support_count(3);
        let expected = mine_arena(&db, &payloads, &params, 4).into_itemsets();
        // Candidates are the mined lattice itself (supports reset by the
        // recount); a recount over any shard count reproduces it exactly.
        let candidates = ItemsetArena::from_itemsets(&expected).to_candidates();
        for n_shards in [1, 3, 7] {
            let source = MemShardSource::new(&db, &payloads, n_shards);
            let mut sink = VecSink::new();
            let (completeness, stats) = recount_into_bounded(
                &source,
                &candidates,
                params.threshold(),
                1,
                0,
                &Budget::unlimited(),
                None,
                &mut sink,
            );
            assert_eq!(completeness, Completeness::Complete, "K={n_shards}");
            assert_eq!(stats.shards_mined, 0);
            assert_eq!(stats.mine_us, 0);
            assert_eq!(stats.recount_rows, db.len() as u64);
            assert_eq!(sink.found, expected, "K={n_shards}");
        }
    }

    #[test]
    fn recount_filters_candidates_below_threshold() {
        let db = db();
        let payloads = payloads(db.len());
        // Mine permissively, recount strictly: the stricter threshold
        // must filter the candidate lattice down to its frequent core.
        let loose = MiningParams::with_min_support_count(1);
        let strict = MiningParams::with_min_support_count(6);
        let candidates = mine_arena(&db, &payloads, &loose, 2).to_candidates();
        let mut reference = crate::eclat::mine(&db, &payloads, &strict);
        crate::itemset::sort_canonical(&mut reference);
        let source = MemShardSource::new(&db, &payloads, 2);
        let mut sink = VecSink::new();
        let (completeness, _) = recount_into_bounded(
            &source,
            &candidates,
            strict.threshold(),
            1,
            0,
            &Budget::unlimited(),
            None,
            &mut sink,
        );
        assert_eq!(completeness, Completeness::Complete);
        assert_eq!(sink.found, reference);
    }

    #[test]
    fn cancelled_recount_emits_nothing_and_names_the_phase() {
        let db = db();
        let payloads = payloads(db.len());
        let params = MiningParams::with_min_support_count(1);
        let candidates = mine_arena(&db, &payloads, &params, 2).to_candidates();
        let token = CancelToken::new();
        token.cancel();
        let source = MemShardSource::new(&db, &payloads, 2);
        let mut sink = VecSink::new();
        let (completeness, stats) = recount_into_bounded(
            &source,
            &candidates,
            params.threshold(),
            1,
            0,
            &Budget::unlimited(),
            Some(&token),
            &mut sink,
        );
        assert_eq!(
            completeness.truncation_reason(),
            Some(TruncationReason::Cancelled)
        );
        assert_eq!(stats.truncated_phase, Some(ShardPhase::Recount));
        assert!(sink.found.is_empty());
    }

    #[test]
    fn parallel_and_prefetched_recounts_match_the_sequential_pass() {
        let db = db();
        let payloads = payloads(db.len());
        let params = MiningParams::with_min_support_count(2);
        let expected = mine_arena(&db, &payloads, &params, 7).into_itemsets();
        for (threads, prefetch) in [(1, 2), (4, 0), (4, 2), (8, 5)] {
            let source = MemShardSource::new(&db, &payloads, 7);
            let mut sink = VecSink::new();
            let (completeness, stats) = mine_into_bounded(
                &source,
                &params,
                threads,
                prefetch,
                &Budget::unlimited(),
                None,
                &mut sink,
            );
            assert_eq!(
                completeness,
                Completeness::Complete,
                "threads={threads} prefetch={prefetch}"
            );
            assert_eq!(stats.recount_rows, db.len() as u64);
            assert!(stats.streamed_bytes > 0);
            assert_eq!(stats.compressed_bytes, 0, "mem source has no encoding");
            assert_eq!(
                sink.found, expected,
                "threads={threads} prefetch={prefetch}"
            );

            let candidates = ItemsetArena::from_itemsets(&expected).to_candidates();
            let mut resink = VecSink::new();
            let (re_comp, re_stats) = recount_into_bounded(
                &source,
                &candidates,
                params.threshold(),
                threads,
                prefetch,
                &Budget::unlimited(),
                None,
                &mut resink,
            );
            assert_eq!(re_comp, Completeness::Complete);
            assert_eq!(re_stats.recount_rows, db.len() as u64);
            assert_eq!(
                resink.found, expected,
                "threads={threads} prefetch={prefetch}"
            );
        }
    }

    #[test]
    fn cancelled_parallel_recount_emits_nothing_and_names_the_phase() {
        let db = db();
        let payloads = payloads(db.len());
        let params = MiningParams::with_min_support_count(1);
        let candidates = mine_arena(&db, &payloads, &params, 2).to_candidates();
        for (threads, prefetch) in [(4, 0), (1, 2), (4, 2)] {
            let token = CancelToken::new();
            token.cancel();
            let source = MemShardSource::new(&db, &payloads, 4);
            let mut sink = VecSink::new();
            let (completeness, stats) = recount_into_bounded(
                &source,
                &candidates,
                params.threshold(),
                threads,
                prefetch,
                &Budget::unlimited(),
                Some(&token),
                &mut sink,
            );
            assert_eq!(
                completeness.truncation_reason(),
                Some(TruncationReason::Cancelled),
                "threads={threads} prefetch={prefetch}"
            );
            assert_eq!(stats.truncated_phase, Some(ShardPhase::Recount));
            assert!(sink.found.is_empty());
        }
    }

    #[test]
    fn peak_resident_bytes_count_concurrent_shards_under_prefetch() {
        let db = db();
        let payloads = payloads(db.len());
        let params = MiningParams::with_min_support_count(2);
        let source = MemShardSource::new(&db, &payloads, 7);
        // One shard's footprint, for scale.
        let one_shard = source.open(0).materialize().approx_bytes();
        let mut sink = VecSink::new();
        let (_, stats) = mine_into_bounded(
            &source,
            &params,
            4,
            0,
            &Budget::unlimited(),
            None,
            &mut sink,
        );
        // With 4 phase-1 workers the gauge may legitimately exceed a
        // single shard; it can never report less than the largest one.
        assert!(
            stats.peak_shard_bytes >= one_shard,
            "peak {} < single shard {}",
            stats.peak_shard_bytes,
            one_shard
        );
        assert!(stats.io_wait_us <= stats.recount_us + stats.mine_us + 1_000_000);
        let ratio = stats.overlap_ratio();
        assert!((0.0..=1.0).contains(&ratio), "overlap_ratio {ratio}");
        assert_eq!(stats.compression_ratio(), None);
    }

    #[test]
    fn deprecated_load_shim_delegates_to_open() {
        let db = db();
        let payloads = payloads(db.len());
        let source = MemShardSource::new(&db, &payloads, 3);
        #[allow(deprecated)]
        let via_shim = ShardSource::load(&source, 1);
        let via_open = source.open(1).materialize();
        assert_eq!(via_shim.start_row, via_open.start_row);
        assert_eq!(via_shim.db.len(), via_open.db.len());
        assert_eq!(via_shim.payloads, via_open.payloads);
        assert_eq!(source.size_hint(1), None);
    }

    #[test]
    fn stats_report_memory_and_coverage() {
        let db = db();
        let payloads = payloads(db.len());
        let params = MiningParams::with_min_support_count(2);
        let source = MemShardSource::new(&db, &payloads, 4);
        let mut arena = ItemsetArena::new();
        let stats = mine_into(&source, &params, &mut arena);
        assert_eq!(stats.n_shards, 4);
        assert_eq!(stats.shards_mined, 4);
        assert_eq!(stats.recount_rows, db.len() as u64);
        assert!(stats.candidates >= arena.len() as u64);
        assert!(stats.peak_shard_bytes > 0);
        assert!(stats.candidate_bytes > 0);
        assert_eq!(stats.truncated_phase, None);
    }
}
