//! Anchored mining: all frequent itemsets *containing* a given anchor item.
//!
//! A fairness auditor often cares only about subgroups mentioning a
//! protected attribute value. Post-filtering a full exploration works, but
//! wastes the whole non-anchored part of the search space; anchoring pushes
//! the constraint into the miner: restrict the database to the anchor's
//! covering transactions (a conditional database), mine it over the
//! remaining items, and prepend the anchor to every result.

use crate::arena::ItemsetArena;
use crate::itemset::FrequentItemset;
use crate::payload::Payload;
use crate::sink::ItemsetSink;
use crate::transaction::{ItemId, TransactionDb, TransactionDbBuilder};
use crate::{Algorithm, MiningParams};

/// Mines all frequent itemsets of `db` that contain `anchor`.
///
/// Support is counted against the *full* database (an itemset containing
/// the anchor is only supported by transactions that contain the anchor, so
/// the conditional counts are already the global counts). The anchor item
/// itself is reported too (as the itemset `{anchor}`) when frequent.
///
/// # Panics
///
/// Panics if `anchor >= db.n_items()` or `payloads.len() != db.len()`.
pub fn mine_containing<P: Payload + Send + Sync>(
    algorithm: Algorithm,
    db: &TransactionDb,
    payloads: &[P],
    params: &MiningParams,
    anchor: ItemId,
) -> Vec<FrequentItemset<P>> {
    let mut arena = ItemsetArena::new();
    mine_containing_into(algorithm, db, payloads, params, anchor, &mut arena);
    arena.into_itemsets()
}

/// Wraps a sink, re-inserting the anchor into every conditional itemset
/// before forwarding.
struct AnchorSink<'a, S> {
    inner: &'a mut S,
    anchor: ItemId,
    buf: Vec<ItemId>,
}

/// Writes `items` with `anchor` spliced in at its canonical position
/// into `buf`.
fn splice_anchor(buf: &mut Vec<ItemId>, items: &[ItemId], anchor: ItemId) {
    let pos = items.partition_point(|&i| i < anchor);
    debug_assert!(items.get(pos) != Some(&anchor), "anchor in conditional db");
    buf.clear();
    buf.extend_from_slice(&items[..pos]);
    buf.push(anchor);
    buf.extend_from_slice(&items[pos..]);
}

impl<P: Payload, S: ItemsetSink<P>> ItemsetSink<P> for AnchorSink<'_, S> {
    fn emit(&mut self, items: &[ItemId], support: u64, payload: &P) {
        splice_anchor(&mut self.buf, items, self.anchor);
        self.inner.emit(&self.buf, support, payload);
    }

    fn wants_extensions(&mut self, items: &[ItemId], support: u64) -> bool {
        splice_anchor(&mut self.buf, items, self.anchor);
        self.inner.wants_extensions(&self.buf, support)
    }

    fn should_stop(&mut self) -> bool {
        self.inner.should_stop()
    }
}

/// Streams all frequent itemsets of `db` that contain `anchor` into
/// `sink`. The sink sees full itemsets (anchor included, canonical
/// order); `{anchor}` itself is emitted first when frequent.
pub fn mine_containing_into<P: Payload + Send + Sync, S: ItemsetSink<P>>(
    algorithm: Algorithm,
    db: &TransactionDb,
    payloads: &[P],
    params: &MiningParams,
    anchor: ItemId,
    sink: &mut S,
) {
    assert!(anchor < db.n_items(), "anchor out of the item universe");
    assert_eq!(payloads.len(), db.len(), "payload length mismatch");
    let threshold = params.threshold();

    // Conditional database: the anchor's covering transactions, with the
    // anchor removed from each row.
    let cond_db_span = obs::span("fpm.anchored.cond_db");
    let mut builder = TransactionDbBuilder::new(db.n_items());
    let mut cond_payloads: Vec<P> = Vec::new();
    let mut anchor_support = 0u64;
    let mut anchor_payload = P::zero();
    let mut buf: Vec<ItemId> = Vec::new();
    for (t, row) in db.iter().enumerate() {
        if row.binary_search(&anchor).is_ok() {
            anchor_support += 1;
            anchor_payload.merge(&payloads[t]);
            buf.clear();
            buf.extend(row.iter().copied().filter(|&i| i != anchor));
            builder.push(&buf);
            cond_payloads.push(payloads[t].clone());
        }
    }
    if anchor_support < threshold {
        return;
    }
    sink.emit(&[anchor], anchor_support, &anchor_payload);
    if !sink.wants_extensions(&[anchor], anchor_support) {
        return;
    }

    let cond_db = builder.build();
    drop(cond_db_span);
    let mut cond_params = params.clone();
    if let Some(max_len) = params.max_len {
        if max_len <= 1 {
            return;
        }
        cond_params.max_len = Some(max_len - 1);
    }
    let mut anchor_sink = AnchorSink {
        inner: sink,
        anchor,
        buf: Vec::new(),
    };
    crate::dispatch_mine_into(
        algorithm,
        &cond_db,
        &cond_payloads,
        &cond_params,
        &mut anchor_sink,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itemset::sort_canonical;
    use crate::payload::CountPayload;
    use crate::sink::VecSink;

    fn db() -> TransactionDb {
        TransactionDb::from_rows(
            4,
            &[
                vec![0, 1, 2],
                vec![0, 1],
                vec![1, 2, 3],
                vec![0, 2, 3],
                vec![0, 1, 3],
            ],
        )
    }

    #[test]
    fn matches_post_filtered_full_mining() {
        let db = db();
        let payloads: Vec<CountPayload> = (0..db.len()).map(|t| CountPayload(1 << t)).collect();
        for anchor in 0..4u32 {
            for min_support in 1..=3u64 {
                let params = MiningParams::with_min_support_count(min_support);
                let mut anchored =
                    mine_containing(Algorithm::FpGrowth, &db, &payloads, &params, anchor);
                let mut filtered: Vec<_> = crate::MiningTask::with_params(&db, params.clone())
                    .payloads(&payloads)
                    .algorithm(Algorithm::FpGrowth)
                    .run()
                    .into_itemsets()
                    .into_iter()
                    .filter(|fi| fi.items.contains(&anchor))
                    .collect();
                sort_canonical(&mut anchored);
                sort_canonical(&mut filtered);
                assert_eq!(anchored, filtered, "anchor={anchor} s={min_support}");
            }
        }
    }

    #[test]
    fn sink_sees_full_anchored_itemsets() {
        let db = db();
        let params = MiningParams::with_min_support_count(1);
        let mut sink = VecSink::new();
        mine_containing_into(Algorithm::Eclat, &db, &[(); 5], &params, 2, &mut sink);
        assert!(!sink.found.is_empty());
        assert!(sink.found.iter().all(|fi| fi.items.contains(&2)));
        assert!(sink
            .found
            .iter()
            .all(|fi| fi.items.windows(2).all(|w| w[0] < w[1])));
        let expected = mine_containing(Algorithm::Eclat, &db, &[(); 5], &params, 2);
        let mut got = sink.found;
        sort_canonical(&mut got);
        let mut want = expected;
        sort_canonical(&mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn infrequent_anchor_yields_nothing() {
        let db = db();
        let params = MiningParams::with_min_support_count(4);
        let found = mine_containing(Algorithm::Eclat, &db, &[(); 5], &params, 3);
        assert!(found.is_empty());
    }

    #[test]
    fn max_len_counts_the_anchor() {
        let db = db();
        let params = MiningParams::with_min_support_count(1).max_len(2);
        let found = mine_containing(Algorithm::Apriori, &db, &[(); 5], &params, 0);
        assert!(found.iter().all(|fi| fi.items.len() <= 2));
        assert!(found.iter().all(|fi| fi.items.contains(&0)));
        // With max_len 1, only the anchor itself.
        let params = MiningParams::with_min_support_count(1).max_len(1);
        let found = mine_containing(Algorithm::Apriori, &db, &[(); 5], &params, 0);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].items, vec![0]);
    }

    #[test]
    #[should_panic(expected = "anchor out of the item universe")]
    fn bad_anchor_panics() {
        let db = db();
        let _ = mine_containing(
            Algorithm::FpGrowth,
            &db,
            &[(); 5],
            &MiningParams::with_min_support_count(1),
            99,
        );
    }
}
