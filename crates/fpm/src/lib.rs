//! Frequent pattern mining (FPM) substrate for DivExplorer.
//!
//! This crate implements three classic frequent-itemset mining algorithms —
//! level-wise [Apriori](apriori), [FP-growth](fpgrowth) over an FP-tree, and
//! vertical [Eclat](eclat) — plus the class-mask popcount engine
//! [`dense`] (adaptive bitset / tid-list / dEclat-diffset representation
//! with payload counters computed as `popcount(tidset & class_mask)`) and
//! a [naive reference miner](naive) used for differential testing.
//!
//! The distinguishing feature, required by Algorithm 1 of the DivExplorer
//! paper (Pastor et al., SIGMOD 2021), is that every miner is generic over a
//! per-transaction [`Payload`] that is *fused* into support counting: when a
//! miner tallies the support of an itemset, it simultaneously merges the
//! payloads of the covering transactions. DivExplorer uses this to carry the
//! `(T, F, ⊥)` outcome-function counters through the mining pass, so the
//! divergence of every frequent itemset is known the moment mining ends,
//! without a second scan of the data.
//!
//! # The `MiningTask` entry point
//!
//! Every run is described by a [`MiningTask`] builder: database and
//! threshold, then any combination of backend, payloads, budget, cancel
//! token, worker threads, and shards, executed with
//! [`MiningTask::run`] (materializes an [`ItemsetArena`]) or
//! [`MiningTask::run_into`] (*streams* each frequent itemset into an
//! [`ItemsetSink`] as soon as its support is known — the itemset is
//! passed as a borrowed slice, so sinks that filter, count, or aggregate
//! never pay a per-itemset allocation). The historical free functions
//! (`mine`, `mine_arena`, `mine_into`, `mine_into_bounded`,
//! `mine_counts`) went through a deprecation cycle and have been
//! removed; the builder is the only entry point. For re-analysis of an
//! already mined lattice under a new payload vector, use
//! [`MiningTask::recount`] — an exact streaming recount with no mining
//! phase.
//!
//! Sinks compose. For example, a sink that keeps only itemsets whose
//! payload-derived statistic clears a threshold:
//!
//! ```
//! use fpm::{Algorithm, ItemsetSink, MiningTask, TransactionDb};
//! use fpm::sink::{FilterSink, VecSink};
//!
//! let db = TransactionDb::from_rows(3, &[
//!     vec![0, 1], vec![0, 1], vec![0, 2], vec![1, 2],
//! ]);
//! // Keep only itemsets covering at least 3 of the 4 transactions.
//! let mut sink = FilterSink::new(VecSink::new(), |_items: &[u32], support, _p: &()| {
//!     support >= 3
//! });
//! MiningTask::new(&db, 1)
//!     .algorithm(Algorithm::FpGrowth)
//!     .run_into(&mut sink);
//! let kept = sink.into_inner().found;
//! assert!(kept.iter().all(|fi| fi.support >= 3));
//! assert_eq!(kept.len(), 2); // {0} and {1}
//! ```
//!
//! # Example
//!
//! ```
//! use fpm::{Algorithm, MiningTask, TransactionDb};
//!
//! // Four transactions over items 0..4.
//! let db = TransactionDb::from_rows(5, &[
//!     vec![0, 1, 2],
//!     vec![0, 1],
//!     vec![0, 3],
//!     vec![1, 2, 4],
//! ]);
//! let found = MiningTask::new(&db, 2)
//!     .algorithm(Algorithm::FpGrowth)
//!     .run()
//!     .into_itemsets();
//! // {0}, {1}, {2}, {0,1}, {1,2} are frequent at minimum support 2.
//! assert_eq!(found.len(), 5);
//! ```
//!
//! # Scaling out
//!
//! [`Algorithm::Sharded`] (or [`MiningTask::shards`]) engages the
//! [`sharded`] two-pass Partition engine: shards are mined for local
//! candidates in parallel, then one streaming recount pass computes
//! exact global supports and payloads — see the [`sharded`] module docs
//! for the soundness argument and memory model.

pub mod anchored;
pub mod apriori;
pub mod arena;
pub mod bitset_eclat;
pub mod budget;
pub mod closed;
pub mod dense;
pub mod eclat;
pub mod fpgrowth;
pub mod fptree;
pub mod itemset;
pub mod kernels;
pub mod masks;
pub mod naive;
pub mod parallel;
pub mod payload;
pub mod rules;
pub mod sharded;
pub mod sink;
pub mod task;
pub mod trace;
pub mod transaction;
pub mod vertical;

pub use arena::{ArenaEntry, ItemsetArena};
pub use budget::{Budget, BudgetSink, CancelToken, Completeness, TruncationReason};
pub use itemset::FrequentItemset;
pub use kernels::{AlignedWords, Kernel};
pub use masks::{ClassMasks, MaskSpec};
pub use payload::{CountPayload, Payload};
pub use sharded::{MemShardSource, Shard, ShardHandle, ShardPhase, ShardSource, ShardStats};
pub use sink::{CountingSink, FilterSink, ItemsetSink, TopKBySupportSink, VecSink};
pub use task::{MiningOutcome, MiningTask, MiningVerdict};
pub use trace::TracingSink;
pub use transaction::{ItemId, TransactionDb, TransactionDbBuilder};

use rustc_hash::FxHashMap;

/// Parameters controlling a mining run.
#[derive(Debug, Clone)]
pub struct MiningParams {
    /// Minimum support expressed as an absolute transaction count.
    ///
    /// An itemset is frequent iff at least this many transactions contain it.
    /// A value of `0` is treated as `1` (an itemset with empty support is
    /// never reported).
    pub min_support_count: u64,
    /// Optional cap on itemset length. `None` mines itemsets of every length.
    pub max_len: Option<usize>,
}

impl MiningParams {
    /// Parameters with an absolute support-count threshold and no length cap.
    pub fn with_min_support_count(min_support_count: u64) -> Self {
        Self {
            min_support_count,
            max_len: None,
        }
    }

    /// Parameters with a relative support threshold `s` in `[0, 1]`, resolved
    /// against a database of `n_transactions` rows.
    ///
    /// DivExplorer's support threshold `s` is a fraction; the paper defines
    /// frequent itemsets as those with `sup(I) >= s`, i.e. support count
    /// `>= ceil(s * |D|)`.
    pub fn with_min_support_fraction(s: f64, n_transactions: usize) -> Self {
        let count = (s * n_transactions as f64).ceil() as u64;
        Self {
            min_support_count: count.max(1),
            max_len: None,
        }
    }

    /// Builder-style setter for the maximum itemset length.
    pub fn max_len(mut self, max_len: usize) -> Self {
        self.max_len = Some(max_len);
        self
    }

    /// The effective threshold: at least one transaction.
    pub(crate) fn threshold(&self) -> u64 {
        self.min_support_count.max(1)
    }
}

/// Selects which mining algorithm executes a run.
///
/// All algorithms produce the same set of frequent itemsets with the same
/// supports and payload sums (verified by differential property tests); they
/// differ only in performance characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Level-wise candidate generation with hash-based support counting
    /// (Agrawal & Srikant, VLDB 1994).
    Apriori,
    /// Pattern growth over an FP-tree (Han, Pei & Yin, SIGMOD 2000). This is
    /// the algorithm the paper couples with DivExplorer in all reported
    /// experiments.
    FpGrowth,
    /// Depth-first vertical mining over tid-lists (Zaki, 1997).
    Eclat,
    /// Vertical mining over packed bit vectors — fastest on dense databases
    /// like DivExplorer's one-item-per-attribute transactions.
    EclatBitset,
    /// Class-mask popcount counting with adaptive tidsets (bitsets,
    /// sorted tid-lists, dEclat diffsets): payload counters are computed
    /// as `popcount(tidset & class_mask)` instead of per-tid merges.
    /// Payloads that don't lower into class masks fall back to
    /// [`Algorithm::Eclat`] transparently.
    Dense,
    /// Two-pass Partition mining over horizontal row shards: local
    /// candidate mining per shard (dense engine, scaled threshold), then
    /// one exact streaming recount — see [`sharded`]. Shard count
    /// defaults to [`sharded::DEFAULT_SHARDS`]; pick it with
    /// [`MiningTask::shards`].
    Sharded,
    /// Exhaustive depth-first enumeration with per-candidate scans. Only
    /// suitable for small inputs; used as the differential-testing oracle.
    Naive,
}

impl Algorithm {
    /// Every production algorithm (excludes [`Algorithm::Naive`]).
    pub const ALL: [Algorithm; 6] = [
        Algorithm::Apriori,
        Algorithm::FpGrowth,
        Algorithm::Eclat,
        Algorithm::EclatBitset,
        Algorithm::Dense,
        Algorithm::Sharded,
    ];

    /// The telemetry span name wrapping a [`mine_into`] run with this
    /// backend.
    pub fn span_name(&self) -> &'static str {
        match self {
            Algorithm::Apriori => "fpm.mine.apriori",
            Algorithm::FpGrowth => "fpm.mine.fp-growth",
            Algorithm::Eclat => "fpm.mine.eclat",
            Algorithm::EclatBitset => "fpm.mine.eclat-bitset",
            Algorithm::Dense => "fpm.mine.dense",
            Algorithm::Sharded => "fpm.mine.sharded",
            Algorithm::Naive => "fpm.mine.naive",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Algorithm::Apriori => "apriori",
            Algorithm::FpGrowth => "fp-growth",
            Algorithm::Eclat => "eclat",
            Algorithm::EclatBitset => "eclat-bitset",
            Algorithm::Dense => "dense",
            Algorithm::Sharded => "sharded",
            Algorithm::Naive => "naive",
        };
        f.write_str(name)
    }
}

/// Streams all frequent itemsets of `db` into `sink` with the chosen
/// backend — the internal, non-deprecated dispatcher behind
/// [`MiningTask`]'s sequential path.
///
/// # Panics
///
/// Panics if `payloads.len() != db.len()`.
pub(crate) fn dispatch_mine_into<P: Payload + Send + Sync, S: ItemsetSink<P>>(
    algorithm: Algorithm,
    db: &TransactionDb,
    payloads: &[P],
    params: &MiningParams,
    sink: &mut S,
) {
    assert_eq!(
        payloads.len(),
        db.len(),
        "payload slice length must match transaction count"
    );
    let _span = obs::span(algorithm.span_name());
    match algorithm {
        Algorithm::Apriori => apriori::mine_into(db, payloads, params, sink),
        Algorithm::FpGrowth => fpgrowth::mine_into(db, payloads, params, sink),
        Algorithm::Eclat => eclat::mine_into(db, payloads, params, sink),
        Algorithm::EclatBitset => bitset_eclat::mine_into(db, payloads, params, sink),
        Algorithm::Dense => dense::mine_into(db, payloads, params, sink),
        Algorithm::Sharded => {
            let source = sharded::MemShardSource::new(db, payloads, sharded::DEFAULT_SHARDS);
            sharded::mine_into(&source, params, sink);
        }
        Algorithm::Naive => naive::mine_into(db, payloads, params, sink),
    }
}

/// Indexes a mining result by itemset for `O(1)` lookup.
///
/// Keys are the canonical (sorted) item slices of each frequent itemset.
pub fn index_by_itemset<P: Payload>(found: &[FrequentItemset<P>]) -> FxHashMap<&[ItemId], usize> {
    let mut map = FxHashMap::default();
    map.reserve(found.len());
    for (i, fi) in found.iter().enumerate() {
        map.insert(fi.items.as_slice(), i);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_db() -> TransactionDb {
        TransactionDb::from_rows(
            6,
            &[
                vec![0, 1, 2],
                vec![0, 1],
                vec![0, 3],
                vec![1, 2, 4],
                vec![0, 1, 2, 5],
            ],
        )
    }

    #[test]
    fn all_algorithms_agree_on_toy_db() {
        let db = toy_db();
        let params = MiningParams::with_min_support_count(2);
        let mut reference = naive::mine(&db, &vec![(); db.len()], &params);
        reference.sort();
        for algo in Algorithm::ALL {
            let mut got = MiningTask::with_params(&db, params.clone())
                .algorithm(algo)
                .run()
                .into_itemsets();
            got.sort();
            assert_eq!(got, reference, "{algo} disagrees with naive oracle");
        }
    }

    #[test]
    fn min_support_fraction_resolves_to_ceil() {
        let p = MiningParams::with_min_support_fraction(0.1, 25);
        assert_eq!(p.min_support_count, 3);
        let p = MiningParams::with_min_support_fraction(0.5, 10);
        assert_eq!(p.min_support_count, 5);
        let p = MiningParams::with_min_support_fraction(0.0, 10);
        assert_eq!(p.min_support_count, 1);
    }

    #[test]
    fn max_len_caps_output() {
        let db = toy_db();
        let params = MiningParams::with_min_support_count(1).max_len(2);
        for algo in Algorithm::ALL {
            let found = MiningTask::with_params(&db, params.clone())
                .algorithm(algo)
                .run()
                .into_itemsets();
            assert!(found.iter().all(|fi| fi.items.len() <= 2), "{algo}");
            assert!(found.iter().any(|fi| fi.items.len() == 2), "{algo}");
        }
    }

    #[test]
    fn index_by_itemset_round_trips() {
        let db = toy_db();
        let found = MiningTask::new(&db, 2)
            .algorithm(Algorithm::FpGrowth)
            .run()
            .into_itemsets();
        let idx = index_by_itemset(&found);
        for (i, fi) in found.iter().enumerate() {
            assert_eq!(idx[fi.items.as_slice()], i);
        }
    }

    #[test]
    #[should_panic(expected = "payload slice length")]
    fn mismatched_payload_length_panics() {
        let db = toy_db();
        let _ = MiningTask::new(&db, 2)
            .payloads(&[(), ()])
            .algorithm(Algorithm::Apriori)
            .run();
    }
}
