//! Shared vertical-representation helpers: tid-lists and their
//! intersections, with optional fused payload aggregation.
//!
//! [`crate::eclat`], [`crate::naive`], and [`crate::parallel`] all work
//! over per-item transaction-id lists; this module is the single home
//! for building them and intersecting them.

use crate::payload::Payload;
use crate::transaction::TransactionDb;

/// Builds the vertical representation: one sorted tid-list per item.
///
/// Each list is sized exactly from the per-item support histogram before
/// the fill pass, so building the representation never reallocates.
pub fn tid_lists(db: &TransactionDb) -> Vec<Vec<u32>> {
    let mut tidlists: Vec<Vec<u32>> = db
        .item_support_counts()
        .into_iter()
        .map(|c| Vec::with_capacity(c as usize))
        .collect();
    for (t, row) in db.iter().enumerate() {
        for &item in row {
            tidlists[item as usize].push(t as u32);
        }
    }
    tidlists
}

/// Intersects two sorted tid-lists.
pub fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Intersects two sorted tid-lists, merging the payloads of shared tids
/// in the same pass.
pub fn intersect_with_payload<P: Payload>(a: &[u32], b: &[u32], payloads: &[P]) -> (Vec<u32>, P) {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let mut payload = P::zero();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                payload.merge(&payloads[a[i] as usize]);
                i += 1;
                j += 1;
            }
        }
    }
    (out, payload)
}

/// Merges the payloads of all listed tids.
pub fn sum_payloads<P: Payload>(tids: &[u32], payloads: &[P]) -> P {
    let mut total = P::zero();
    for &t in tids {
        total.merge(&payloads[t as usize]);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::CountPayload;

    #[test]
    fn intersect_sorted_lists() {
        assert_eq!(intersect(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert_eq!(intersect(&[], &[1]), Vec::<u32>::new());
    }

    #[test]
    fn intersect_payload_merges_only_shared_tids() {
        let payloads = [CountPayload(1), CountPayload(2), CountPayload(4)];
        let (tids, pay) = intersect_with_payload(&[0, 1, 2], &[1, 2], &payloads);
        assert_eq!(tids, vec![1, 2]);
        assert_eq!(pay, CountPayload(6));
    }

    #[test]
    fn tid_lists_cover_every_occurrence() {
        let db = TransactionDb::from_rows(3, &[vec![0, 1], vec![0, 2], vec![1]]);
        let lists = tid_lists(&db);
        assert_eq!(lists, vec![vec![0, 1], vec![0, 2], vec![1]]);
        // Pre-sized from the counting pass: filled to exact capacity.
        for list in &lists {
            assert_eq!(list.capacity(), list.len());
        }
    }

    #[test]
    fn sum_payloads_merges_listed_tids() {
        let payloads = [CountPayload(1), CountPayload(10), CountPayload(100)];
        assert_eq!(sum_payloads(&[0, 2], &payloads), CountPayload(101));
    }
}
