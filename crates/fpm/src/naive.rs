//! Exhaustive reference miner used as a differential-testing oracle.
//!
//! Enumerates candidate itemsets depth-first in lexicographic order and
//! computes each candidate's support by intersecting explicit tid-lists.
//! Simple and obviously correct, but keeps no compressed structures, so it is
//! only suitable for small inputs.

use crate::arena::ItemsetArena;
use crate::itemset::FrequentItemset;
use crate::payload::Payload;
use crate::sink::ItemsetSink;
use crate::transaction::{ItemId, TransactionDb};
use crate::vertical;
use crate::MiningParams;

/// Mines all frequent itemsets (length >= 1) by exhaustive enumeration.
pub fn mine<P: Payload>(
    db: &TransactionDb,
    payloads: &[P],
    params: &MiningParams,
) -> Vec<FrequentItemset<P>> {
    let mut arena = ItemsetArena::new();
    mine_into(db, payloads, params, &mut arena);
    arena.into_itemsets()
}

/// Streams all frequent itemsets into `sink`, depth-first in
/// lexicographic order.
pub fn mine_into<P: Payload, S: ItemsetSink<P>>(
    db: &TransactionDb,
    payloads: &[P],
    params: &MiningParams,
    sink: &mut S,
) {
    let threshold = params.threshold();
    let max_len = params.max_len.unwrap_or(usize::MAX);
    if max_len == 0 {
        return;
    }

    let tid_build = obs::span("fpm.eclat.tid_build");
    let tidlists = vertical::tid_lists(db);
    drop(tid_build);
    let mut prefix: Vec<ItemId> = Vec::new();
    for item in 0..db.n_items() {
        // Checkpoint between root subtrees (budget/cancellation hook).
        if sink.should_stop() {
            return;
        }
        let tids = tidlists[item as usize].clone();
        extend(
            db,
            payloads,
            threshold,
            max_len,
            item,
            tids,
            &mut prefix,
            &tidlists,
            sink,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn extend<P: Payload, S: ItemsetSink<P>>(
    db: &TransactionDb,
    payloads: &[P],
    threshold: u64,
    max_len: usize,
    item: ItemId,
    tids: Vec<u32>,
    prefix: &mut Vec<ItemId>,
    tidlists: &[Vec<u32>],
    sink: &mut S,
) {
    if (tids.len() as u64) < threshold {
        return;
    }
    prefix.push(item);
    let support = tids.len() as u64;
    let payload = vertical::sum_payloads(&tids, payloads);
    sink.emit(prefix, support, &payload);
    if prefix.len() < max_len && sink.wants_extensions(prefix, support) {
        if sink.should_stop() {
            prefix.pop();
            return;
        }
        obs::counter("fpm.tid_intersections", (db.n_items() - item - 1) as u64);
        for next in (item + 1)..db.n_items() {
            let next_tids = vertical::intersect(&tids, &tidlists[next as usize]);
            extend(
                db, payloads, threshold, max_len, next, next_tids, prefix, tidlists, sink,
            );
        }
    }
    prefix.pop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::CountPayload;

    #[test]
    fn finds_expected_itemsets() {
        let db = TransactionDb::from_rows(3, &[vec![0, 1], vec![0, 1], vec![0, 2], vec![1]]);
        let params = MiningParams::with_min_support_count(2);
        let found = mine(&db, &[(); 4], &params);
        let items: Vec<_> = found.iter().map(|f| f.items.clone()).collect();
        assert!(items.contains(&vec![0]));
        assert!(items.contains(&vec![1]));
        assert!(items.contains(&vec![0, 1]));
        assert!(!items.contains(&vec![2]));
        assert!(!items.contains(&vec![0, 2]));
    }

    #[test]
    fn payload_sums_match_covering_transactions() {
        let db = TransactionDb::from_rows(2, &[vec![0, 1], vec![0], vec![1]]);
        let payloads = [CountPayload(1), CountPayload(10), CountPayload(100)];
        let params = MiningParams::with_min_support_count(1);
        let found = mine(&db, &payloads, &params);
        let get = |items: &[u32]| {
            found
                .iter()
                .find(|f| f.items == items)
                .map(|f| f.payload)
                .unwrap()
        };
        assert_eq!(get(&[0]), CountPayload(11));
        assert_eq!(get(&[1]), CountPayload(101));
        assert_eq!(get(&[0, 1]), CountPayload(1));
    }

    #[test]
    fn max_len_zero_yields_nothing() {
        let db = TransactionDb::from_rows(2, &[vec![0, 1]]);
        let params = MiningParams::with_min_support_count(1).max_len(0);
        assert!(mine(&db, &[(); 1], &params).is_empty());
    }

    #[test]
    fn wants_extensions_prunes_the_whole_subtree() {
        // Sink that refuses extensions of [0]: no itemset containing 0
        // with length > 1 may be emitted, but [1], [1,2], … still are.
        struct NoZeroExtensions {
            seen: Vec<Vec<ItemId>>,
        }
        impl ItemsetSink<()> for NoZeroExtensions {
            fn emit(&mut self, items: &[ItemId], _support: u64, _payload: &()) {
                self.seen.push(items.to_vec());
            }
            fn wants_extensions(&mut self, items: &[ItemId], _support: u64) -> bool {
                items != [0]
            }
        }
        let db =
            TransactionDb::from_rows(3, &[vec![0, 1, 2], vec![0, 1, 2], vec![0, 1], vec![1, 2]]);
        let mut sink = NoZeroExtensions { seen: Vec::new() };
        mine_into(
            &db,
            &[(); 4],
            &MiningParams::with_min_support_count(1),
            &mut sink,
        );
        assert!(sink.seen.contains(&vec![0]));
        assert!(sink.seen.contains(&vec![1, 2]));
        assert!(!sink.seen.iter().any(|s| s.len() > 1 && s[0] == 0));
    }
}
