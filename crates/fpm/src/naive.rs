//! Exhaustive reference miner used as a differential-testing oracle.
//!
//! Enumerates candidate itemsets depth-first in lexicographic order and
//! computes each candidate's support by intersecting explicit tid-lists.
//! Simple and obviously correct, but keeps no compressed structures, so it is
//! only suitable for small inputs.

use crate::itemset::FrequentItemset;
use crate::payload::Payload;
use crate::transaction::{ItemId, TransactionDb};
use crate::MiningParams;

/// Mines all frequent itemsets (length >= 1) by exhaustive enumeration.
pub fn mine<P: Payload>(
    db: &TransactionDb,
    payloads: &[P],
    params: &MiningParams,
) -> Vec<FrequentItemset<P>> {
    let threshold = params.threshold();
    let max_len = params.max_len.unwrap_or(usize::MAX);
    if max_len == 0 {
        return Vec::new();
    }

    // tid-lists per item.
    let n_items = db.n_items() as usize;
    let mut tidlists: Vec<Vec<u32>> = vec![Vec::new(); n_items];
    for (t, row) in db.iter().enumerate() {
        for &item in row {
            tidlists[item as usize].push(t as u32);
        }
    }

    let mut out = Vec::new();
    let mut prefix: Vec<ItemId> = Vec::new();
    for item in 0..n_items as u32 {
        let tids = tidlists[item as usize].clone();
        extend(db, payloads, threshold, max_len, item, tids, &mut prefix, &tidlists, &mut out);
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn extend<P: Payload>(
    db: &TransactionDb,
    payloads: &[P],
    threshold: u64,
    max_len: usize,
    item: ItemId,
    tids: Vec<u32>,
    prefix: &mut Vec<ItemId>,
    tidlists: &[Vec<u32>],
    out: &mut Vec<FrequentItemset<P>>,
) {
    if (tids.len() as u64) < threshold {
        return;
    }
    prefix.push(item);
    let mut payload = P::zero();
    for &t in &tids {
        payload.merge(&payloads[t as usize]);
    }
    out.push(FrequentItemset {
        items: prefix.clone(),
        support: tids.len() as u64,
        payload,
    });
    if prefix.len() < max_len {
        for next in (item + 1)..db.n_items() {
            let next_tids = intersect(&tids, &tidlists[next as usize]);
            extend(db, payloads, threshold, max_len, next, next_tids, prefix, tidlists, out);
        }
    }
    prefix.pop();
}

/// Intersects two sorted tid-lists.
pub(crate) fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::CountPayload;

    #[test]
    fn finds_expected_itemsets() {
        let db = TransactionDb::from_rows(
            3,
            &[vec![0, 1], vec![0, 1], vec![0, 2], vec![1]],
        );
        let params = MiningParams::with_min_support_count(2);
        let found = mine(&db, &[(); 4], &params);
        let items: Vec<_> = found.iter().map(|f| f.items.clone()).collect();
        assert!(items.contains(&vec![0]));
        assert!(items.contains(&vec![1]));
        assert!(items.contains(&vec![0, 1]));
        assert!(!items.contains(&vec![2]));
        assert!(!items.contains(&vec![0, 2]));
    }

    #[test]
    fn payload_sums_match_covering_transactions() {
        let db = TransactionDb::from_rows(2, &[vec![0, 1], vec![0], vec![1]]);
        let payloads = [CountPayload(1), CountPayload(10), CountPayload(100)];
        let params = MiningParams::with_min_support_count(1);
        let found = mine(&db, &payloads, &params);
        let get = |items: &[u32]| {
            found
                .iter()
                .find(|f| f.items == items)
                .map(|f| f.payload)
                .unwrap()
        };
        assert_eq!(get(&[0]), CountPayload(11));
        assert_eq!(get(&[1]), CountPayload(101));
        assert_eq!(get(&[0, 1]), CountPayload(1));
    }

    #[test]
    fn intersect_sorted_lists() {
        assert_eq!(intersect(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert_eq!(intersect(&[], &[1]), Vec::<u32>::new());
    }

    #[test]
    fn max_len_zero_yields_nothing() {
        let db = TransactionDb::from_rows(2, &[vec![0, 1]]);
        let params = MiningParams::with_min_support_count(1).max_len(0);
        assert!(mine(&db, &[(); 1], &params).is_empty());
    }
}
