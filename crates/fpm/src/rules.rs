//! Association rules derived from a frequent-itemset collection
//! (Agrawal & Srikant, VLDB 1994): `antecedent ⇒ consequent` with support,
//! confidence and lift.
//!
//! Rule mining rounds out the FPM substrate: DivExplorer itself consumes
//! raw itemsets, but rule confidence is the natural language for reading a
//! mined pattern ("misdemeanor + short stay ⇒ no priors, confidence 0.8"),
//! and lift reveals the attribute correlations that the divergence analyses
//! (e.g. Figure 9's Masters/Prof confound) rest on.

use rustc_hash::FxHashMap;

use crate::itemset::FrequentItemset;
use crate::transaction::ItemId;

/// One association rule `antecedent ⇒ consequent`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Left-hand side (sorted, non-empty).
    pub antecedent: Vec<ItemId>,
    /// Right-hand side (sorted, non-empty, disjoint from the antecedent).
    pub consequent: Vec<ItemId>,
    /// Support fraction of `antecedent ∪ consequent`.
    pub support: f64,
    /// `sup(A ∪ C) / sup(A)`.
    pub confidence: f64,
    /// `confidence / sup(C)` — > 1 means positive association.
    pub lift: f64,
}

/// Parameters of [`generate_rules`].
#[derive(Debug, Clone)]
pub struct RuleParams {
    /// Minimum confidence for a rule to be emitted.
    pub min_confidence: f64,
    /// Total transactions in the mined database (for support fractions).
    pub n_transactions: usize,
}

/// Generates all association rules from a *complete* frequent-itemset
/// collection (as produced by any miner in this crate, no `max_len` cap),
/// keeping those with confidence ≥ the threshold.
///
/// Every rule's antecedent and consequent are frequent by closure, so all
/// statistics come from lookups — no data re-scan.
pub fn generate_rules<P>(found: &[FrequentItemset<P>], params: &RuleParams) -> Vec<Rule> {
    assert!(
        params.n_transactions > 0,
        "need a positive transaction count"
    );
    assert!(
        (0.0..=1.0).contains(&params.min_confidence),
        "confidence must be in [0, 1]"
    );
    let support_of: FxHashMap<&[ItemId], u64> = found
        .iter()
        .map(|fi| (fi.items.as_slice(), fi.support))
        .collect();
    let n = params.n_transactions as f64;

    let mut rules = Vec::new();
    let mut antecedent = Vec::new();
    let mut consequent = Vec::new();
    for fi in found {
        let k = fi.items.len();
        if k < 2 {
            continue;
        }
        debug_assert!(k < 64);
        // All proper, non-empty splits of the itemset.
        for mask in 1u64..((1u64 << k) - 1) {
            antecedent.clear();
            consequent.clear();
            for (i, &item) in fi.items.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    antecedent.push(item);
                } else {
                    consequent.push(item);
                }
            }
            let Some(&sup_a) = support_of.get(antecedent.as_slice()) else {
                continue; // impossible on complete inputs
            };
            let confidence = fi.support as f64 / sup_a as f64;
            if confidence < params.min_confidence {
                continue;
            }
            let Some(&sup_c) = support_of.get(consequent.as_slice()) else {
                continue;
            };
            rules.push(Rule {
                antecedent: antecedent.clone(),
                consequent: consequent.clone(),
                support: fi.support as f64 / n,
                confidence,
                lift: confidence / (sup_c as f64 / n),
            });
        }
    }
    rules.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .unwrap()
            .then_with(|| b.lift.partial_cmp(&a.lift).unwrap())
            .then_with(|| a.antecedent.cmp(&b.antecedent))
    });
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::TransactionDb;
    use crate::{Algorithm, MiningTask};

    /// Item 1 occurs iff item 0 occurs (perfect implication 0 ⇒ 1);
    /// item 2 is independent.
    fn rules_fixture() -> Vec<Rule> {
        let db = TransactionDb::from_rows(
            3,
            &[
                vec![0, 1],
                vec![0, 1, 2],
                vec![0, 1],
                vec![0, 1, 2],
                vec![2],
                vec![],
                vec![2],
                vec![],
            ],
        );
        let found = MiningTask::new(&db, 1)
            .algorithm(Algorithm::FpGrowth)
            .run()
            .into_itemsets();
        generate_rules(
            &found,
            &RuleParams {
                min_confidence: 0.0,
                n_transactions: db.len(),
            },
        )
    }

    fn find<'a>(rules: &'a [Rule], a: &[u32], c: &[u32]) -> &'a Rule {
        rules
            .iter()
            .find(|r| r.antecedent == a && r.consequent == c)
            .unwrap_or_else(|| panic!("rule {a:?} => {c:?} missing"))
    }

    #[test]
    fn perfect_implication_has_confidence_one() {
        let rules = rules_fixture();
        let r = find(&rules, &[0], &[1]);
        assert!((r.confidence - 1.0).abs() < 1e-12);
        assert!((r.support - 0.5).abs() < 1e-12);
        // lift = 1.0 / sup(1) = 1 / 0.5 = 2.
        assert!((r.lift - 2.0).abs() < 1e-12);
    }

    #[test]
    fn independent_items_have_lift_one() {
        let rules = rules_fixture();
        // sup(0)=0.5, sup(2)=0.5, sup(0,2)=0.25: independent.
        let r = find(&rules, &[0], &[2]);
        assert!((r.lift - 1.0).abs() < 1e-12);
        assert!((r.confidence - 0.5).abs() < 1e-12);
    }

    #[test]
    fn confidence_threshold_filters() {
        let db = TransactionDb::from_rows(2, &[vec![0, 1], vec![0], vec![0], vec![0]]);
        let found = MiningTask::new(&db, 1)
            .algorithm(Algorithm::Apriori)
            .run()
            .into_itemsets();
        let strict = generate_rules(
            &found,
            &RuleParams {
                min_confidence: 0.9,
                n_transactions: 4,
            },
        );
        // 0 => 1 has confidence 0.25 (dropped); 1 => 0 has confidence 1.
        assert_eq!(strict.len(), 1);
        assert_eq!(strict[0].antecedent, vec![1]);
        assert_eq!(strict[0].consequent, vec![0]);
    }

    #[test]
    fn rules_are_sorted_by_confidence() {
        let rules = rules_fixture();
        assert!(rules.windows(2).all(|w| w[0].confidence >= w[1].confidence));
    }

    #[test]
    fn all_splits_of_triples_are_generated() {
        let rules = rules_fixture();
        // The triple {0,1,2} yields 2^3 - 2 = 6 rules.
        let from_triple = rules
            .iter()
            .filter(|r| r.antecedent.len() + r.consequent.len() == 3)
            .count();
        assert_eq!(from_triple, 6);
    }
}
