//! Streaming result handling: the [`ItemsetSink`] trait.
//!
//! The seed implementation of every miner materialized its result as
//! `Vec<FrequentItemset<P>>` — one heap-allocated `Vec<ItemId>` per
//! frequent itemset. At low support thresholds the result set dominates
//! both memory and allocation time. Sinks invert the control flow: a
//! miner *emits* each frequent itemset as a borrowed slice the moment
//! its support is known, and the caller decides what to keep.
//!
//! The default collecting sink is [`crate::arena::ItemsetArena`], which
//! stores all itemsets in one flat buffer; filtering, counting, or
//! top-k sinks can drop itemsets without ever allocating for them.
//!
//! # Contract
//!
//! - `emit` receives the itemset in canonical (sorted ascending,
//!   deduplicated) item order. The slice is only valid for the duration
//!   of the call — sinks that retain itemsets must copy it.
//! - Each frequent itemset is emitted exactly once per mining run.
//! - After emitting an itemset `I`, a depth-first miner consults
//!   [`ItemsetSink::wants_extensions`]`(I)`; returning `false` prunes
//!   the entire subtree of proper supersets of `I` grown from `I`.
//!   Because support is anti-monotone, this is the hook for top-k
//!   cutoffs ("no extension can beat the current k-th support") and
//!   depth limits beyond [`crate::MiningParams::max_len`]. The hook is
//!   advisory: level-wise ([`crate::apriori`]) and merged-parallel
//!   ([`crate::parallel`]) execution apply it where their traversal
//!   order allows (see the module docs), and a sink must therefore
//!   filter in `emit` if it *requires* suppression rather than pruning.

use crate::itemset::FrequentItemset;
use crate::payload::Payload;
use crate::transaction::ItemId;

/// Receives frequent itemsets as they are discovered.
pub trait ItemsetSink<P: Payload> {
    /// Called once per frequent itemset, with `items` in canonical
    /// order. `items` is a borrowed scratch buffer — copy it to keep it.
    fn emit(&mut self, items: &[ItemId], support: u64, payload: &P);

    /// Pruning hook: `false` tells a depth-first miner not to grow
    /// proper supersets from the just-emitted itemset. Defaults to
    /// `true` (mine everything).
    fn wants_extensions(&mut self, _items: &[ItemId], _support: u64) -> bool {
        true
    }

    /// Cooperative-cancellation checkpoint: `true` tells the miner to
    /// abandon the run as soon as its traversal allows, keeping whatever
    /// has already been emitted. Miners poll this at periodic
    /// checkpoints (per level, per subtree, every N transactions of a
    /// counting pass) — the hook that makes wall-clock budgets and
    /// [`crate::budget::CancelToken`] effective even where
    /// `wants_extensions` is only advisory. Defaults to `false` (never
    /// stop); implementations must be cheap, as hot loops call this.
    fn should_stop(&mut self) -> bool {
        false
    }
}

/// Sinks compose by mutable reference.
impl<P: Payload, S: ItemsetSink<P> + ?Sized> ItemsetSink<P> for &mut S {
    fn emit(&mut self, items: &[ItemId], support: u64, payload: &P) {
        (**self).emit(items, support, payload)
    }

    fn wants_extensions(&mut self, items: &[ItemId], support: u64) -> bool {
        (**self).wants_extensions(items, support)
    }

    fn should_stop(&mut self) -> bool {
        (**self).should_stop()
    }
}

/// Collects emissions into `FrequentItemset` values (the seed
/// representation). Mostly useful in tests and benchmarks comparing the
/// materialized path against streaming sinks.
#[derive(Debug, Default)]
pub struct VecSink<P> {
    /// Everything emitted so far, in emission order.
    pub found: Vec<FrequentItemset<P>>,
}

impl<P> VecSink<P> {
    pub fn new() -> Self {
        VecSink { found: Vec::new() }
    }
}

impl<P: Payload> ItemsetSink<P> for VecSink<P> {
    fn emit(&mut self, items: &[ItemId], support: u64, payload: &P) {
        self.found.push(FrequentItemset {
            items: items.to_vec(),
            support,
            payload: payload.clone(),
        });
    }
}

/// Counts emissions without retaining anything: the zero-allocation
/// baseline for benchmarks and cardinality estimates.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingSink {
    pub emitted: u64,
    /// Sum of emitted itemset lengths (items that a materializing
    /// consumer would have had to store).
    pub total_items: u64,
}

impl CountingSink {
    pub fn new() -> Self {
        Self::default()
    }
}

impl<P: Payload> ItemsetSink<P> for CountingSink {
    fn emit(&mut self, items: &[ItemId], _support: u64, _payload: &P) {
        self.emitted += 1;
        self.total_items += items.len() as u64;
    }
}

/// Forwards only itemsets matching a predicate; the search space is not
/// pruned (extensions of a rejected itemset are still mined, since a
/// predicate is in general not anti-monotone).
pub struct FilterSink<S, F> {
    pub inner: S,
    predicate: F,
}

impl<S, F> FilterSink<S, F> {
    pub fn new(inner: S, predicate: F) -> Self {
        FilterSink { inner, predicate }
    }

    /// Recovers the wrapped sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<P, S, F> ItemsetSink<P> for FilterSink<S, F>
where
    P: Payload,
    S: ItemsetSink<P>,
    F: FnMut(&[ItemId], u64, &P) -> bool,
{
    fn emit(&mut self, items: &[ItemId], support: u64, payload: &P) {
        if (self.predicate)(items, support, payload) {
            self.inner.emit(items, support, payload);
        }
    }

    fn wants_extensions(&mut self, items: &[ItemId], support: u64) -> bool {
        self.inner.wants_extensions(items, support)
    }

    fn should_stop(&mut self) -> bool {
        self.inner.should_stop()
    }
}

/// Keeps only the `k` highest-support itemsets seen so far and — because
/// support is anti-monotone — prunes any subtree whose root already
/// falls below the current k-th support.
pub struct TopKBySupportSink<P> {
    k: usize,
    /// `(support, items, payload)` min-heap by support (via sorted Vec;
    /// k is small in practice).
    entries: Vec<FrequentItemset<P>>,
}

impl<P: Payload> TopKBySupportSink<P> {
    pub fn new(k: usize) -> Self {
        TopKBySupportSink {
            k,
            entries: Vec::with_capacity(k + 1),
        }
    }

    /// Current support floor: extensions at or below this cannot enter.
    fn floor(&self) -> Option<u64> {
        if self.entries.len() < self.k {
            None
        } else {
            self.entries.last().map(|fi| fi.support)
        }
    }

    /// The retained itemsets, highest support first.
    pub fn into_top(self) -> Vec<FrequentItemset<P>> {
        self.entries
    }
}

impl<P: Payload> ItemsetSink<P> for TopKBySupportSink<P> {
    fn emit(&mut self, items: &[ItemId], support: u64, payload: &P) {
        if self.k == 0 {
            return;
        }
        if let Some(floor) = self.floor() {
            if support <= floor {
                return;
            }
        }
        let at = self.entries.partition_point(|fi| fi.support >= support);
        self.entries.insert(
            at,
            FrequentItemset {
                items: items.to_vec(),
                support,
                payload: payload.clone(),
            },
        );
        self.entries.truncate(self.k);
    }

    fn wants_extensions(&mut self, _items: &[ItemId], support: u64) -> bool {
        // A proper superset has support <= this support; once the heap
        // is full and this subtree's root cannot beat the floor, no
        // descendant can either.
        match self.floor() {
            Some(floor) => support > floor,
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::CountPayload;
    use crate::transaction::TransactionDb;
    use crate::{Algorithm, MiningParams};

    fn db() -> TransactionDb {
        TransactionDb::from_rows(
            4,
            &[
                vec![0, 1, 2],
                vec![0, 1],
                vec![0, 3],
                vec![1, 2],
                vec![0, 1, 2],
            ],
        )
    }

    #[test]
    fn vec_sink_matches_materialized_mine() {
        let db = db();
        let payloads: Vec<CountPayload> = (0..db.len()).map(|t| CountPayload(1 << t)).collect();
        let params = MiningParams::with_min_support_count(2);
        let task = crate::MiningTask::with_params(&db, params.clone())
            .payloads(&payloads)
            .algorithm(Algorithm::FpGrowth);
        let expected = task.run().into_itemsets();
        let mut sink = VecSink::new();
        task.run_into(&mut sink);
        assert_eq!(sink.found, expected);
    }

    #[test]
    fn counting_sink_counts_without_storing() {
        let db = db();
        let params = MiningParams::with_min_support_count(1);
        let task = crate::MiningTask::with_params(&db, params.clone()).algorithm(Algorithm::Eclat);
        let expected = task.run().into_itemsets();
        let mut sink = CountingSink::new();
        task.run_into(&mut sink);
        assert_eq!(sink.emitted as usize, expected.len());
        let total: u64 = expected.iter().map(|fi| fi.items.len() as u64).sum();
        assert_eq!(sink.total_items, total);
    }

    #[test]
    fn filter_sink_forwards_matching_only() {
        let db = db();
        let params = MiningParams::with_min_support_count(1);
        let mut sink = FilterSink::new(VecSink::new(), |items: &[u32], _, _: &()| items.len() == 2);
        crate::MiningTask::with_params(&db, params.clone())
            .algorithm(Algorithm::Apriori)
            .run_into(&mut sink);
        assert!(!sink.inner.found.is_empty());
        assert!(sink.inner.found.iter().all(|fi| fi.items.len() == 2));
    }

    #[test]
    fn top_k_by_support_keeps_the_k_best() {
        let db = db();
        let params = MiningParams::with_min_support_count(1);
        let task = crate::MiningTask::with_params(&db, params.clone()).algorithm(Algorithm::Eclat);
        let mut all = task.run().into_itemsets();
        all.sort_by_key(|fi| std::cmp::Reverse(fi.support));
        for k in [1usize, 3, 5] {
            let mut sink = TopKBySupportSink::new(k);
            task.run_into(&mut sink);
            let top = sink.into_top();
            assert_eq!(top.len(), k.min(all.len()), "k={k}");
            // Supports must match the k highest overall (itemset choice
            // may differ on ties; support multiset may not).
            for (got, want) in top.iter().zip(&all) {
                assert_eq!(got.support, want.support, "k={k}");
            }
        }
    }
}
