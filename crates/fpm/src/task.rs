//! The unified mining entry point.
//!
//! [`MiningTask`] is a builder collapsing the historical free-function
//! zoo (`mine`, `mine_arena`, `mine_into`, `mine_into_bounded`,
//! `mine_counts`) into one configurable run description:
//!
//! ```
//! use fpm::{Algorithm, MiningTask, TransactionDb};
//!
//! let db = TransactionDb::from_rows(5, &[
//!     vec![0, 1, 2],
//!     vec![0, 1],
//!     vec![0, 3],
//!     vec![1, 2, 4],
//! ]);
//! let outcome = MiningTask::new(&db, 2)
//!     .algorithm(Algorithm::FpGrowth)
//!     .run();
//! // {0}, {1}, {2}, {0,1}, {1,2} are frequent at minimum support 2.
//! assert_eq!(outcome.store.len(), 5);
//! assert!(outcome.completeness.is_complete());
//! ```
//!
//! Every axis of a run is a setter: the backend ([`MiningTask::algorithm`],
//! including [`Algorithm::Sharded`]), fused payloads
//! ([`MiningTask::payloads`]), resource bounds ([`MiningTask::budget`],
//! [`MiningTask::cancel`]), parallelism ([`MiningTask::threads`]),
//! sharding ([`MiningTask::shards`]) and IO overlap
//! ([`MiningTask::prefetch`]). Terminal methods:
//! [`MiningTask::run`] materializes an [`ItemsetArena`] inside a
//! [`MiningOutcome`]; [`MiningTask::run_into`] streams into any
//! [`ItemsetSink`] and returns the [`MiningVerdict`].

use crate::arena::ItemsetArena;
use crate::budget::{Budget, BudgetSink, CancelToken, Completeness};
use crate::itemset::FrequentItemset;
use crate::parallel;
use crate::payload::Payload;
use crate::sharded::{self, MemShardSource, ShardStats};
use crate::sink::ItemsetSink;
use crate::transaction::TransactionDb;
use crate::{Algorithm, MiningParams};

/// A fully described mining run: database, threshold, backend, payloads,
/// bounds, and parallelism, executed by [`MiningTask::run`] or
/// [`MiningTask::run_into`].
///
/// See the [module docs](crate::task) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct MiningTask<'a, P = ()> {
    db: &'a TransactionDb,
    payloads: Option<&'a [P]>,
    params: MiningParams,
    algorithm: Algorithm,
    budget: Budget,
    cancel: Option<CancelToken>,
    threads: usize,
    shards: Option<usize>,
    prefetch: usize,
}

/// What [`MiningTask::run_into`] reports after streaming into a sink.
#[derive(Debug, Clone)]
pub struct MiningVerdict {
    /// Whether the run finished, or which limit cut it.
    pub completeness: Completeness,
    /// Telemetry of the sharded engine; `None` for unsharded runs.
    pub shards: Option<ShardStats>,
}

/// What [`MiningTask::run`] materializes.
#[derive(Debug, Clone)]
pub struct MiningOutcome<P> {
    /// Every emitted itemset, in the engine's output order.
    pub store: ItemsetArena<P>,
    /// Whether the run finished, or which limit cut it.
    pub completeness: Completeness,
    /// Telemetry of the sharded engine; `None` for unsharded runs.
    pub shards: Option<ShardStats>,
}

impl<P> MiningOutcome<P> {
    /// Materializes the store into the seed `Vec<FrequentItemset<P>>`
    /// representation, consuming the outcome.
    pub fn into_itemsets(self) -> Vec<FrequentItemset<P>> {
        self.store.into_itemsets()
    }
}

impl<'a> MiningTask<'a, ()> {
    /// A run over `db` with an absolute support-count threshold, unit
    /// payloads, the [`Algorithm::Dense`] backend, no bounds, one
    /// thread, and no sharding.
    pub fn new(db: &'a TransactionDb, min_support_count: u64) -> Self {
        Self::with_params(db, MiningParams::with_min_support_count(min_support_count))
    }

    /// A run over `db` with explicit [`MiningParams`].
    pub fn with_params(db: &'a TransactionDb, params: MiningParams) -> Self {
        MiningTask {
            db,
            payloads: None,
            params,
            algorithm: Algorithm::Dense,
            budget: Budget::unlimited(),
            cancel: None,
            threads: 1,
            shards: None,
            prefetch: 0,
        }
    }
}

impl<'a, P: Payload + Send + Sync> MiningTask<'a, P> {
    /// Attaches per-transaction payloads (one per row), re-typing the
    /// task. Settings configured so far carry over.
    ///
    /// The length is validated when the task runs, not here, so the
    /// builder chain stays infallible.
    pub fn payloads<Q: Payload + Send + Sync>(self, payloads: &'a [Q]) -> MiningTask<'a, Q> {
        MiningTask {
            db: self.db,
            payloads: Some(payloads),
            params: self.params,
            algorithm: self.algorithm,
            budget: self.budget,
            cancel: self.cancel,
            threads: self.threads,
            shards: self.shards,
            prefetch: self.prefetch,
        }
    }

    /// Selects the mining backend. [`Algorithm::Sharded`] routes through
    /// the two-pass engine with [`sharded::DEFAULT_SHARDS`] shards unless
    /// [`MiningTask::shards`] picked a count.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Bounds the run; exhausting any axis truncates instead of panicking.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a cooperative cancellation token.
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Worker threads for the parallel and sharded engines (`1` =
    /// sequential).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn threads(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one thread");
        self.threads = n;
        self
    }

    /// Splits the table into `k` horizontal row shards and runs the
    /// two-pass [`crate::sharded`] engine, regardless of the configured
    /// algorithm (each shard is mined with the dense engine).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn shards(mut self, k: usize) -> Self {
        assert!(k > 0, "need at least one shard");
        self.shards = Some(k);
        self
    }

    /// Shards loaded ahead of the recount under the sharded engine:
    /// `d > 0` dedicates a loader thread that keeps up to `d` shards
    /// materialized ahead of consumption, overlapping IO with counting.
    /// `0` (the default) loads inline on the counting threads. Tallies
    /// are bit-identical either way.
    pub fn prefetch(mut self, d: usize) -> Self {
        self.prefetch = d;
        self
    }

    /// Caps itemset length (forwarded to [`MiningParams::max_len`]).
    pub fn max_len(mut self, max_len: usize) -> Self {
        self.params.max_len = Some(max_len);
        self
    }

    /// The shard count this task will run with, if the sharded engine is
    /// engaged (explicit [`MiningTask::shards`], or the default for
    /// [`Algorithm::Sharded`]).
    fn effective_shards(&self) -> Option<usize> {
        self.shards
            .or((self.algorithm == Algorithm::Sharded).then_some(sharded::DEFAULT_SHARDS))
    }

    /// Runs the task, materializing every emitted itemset into an arena.
    ///
    /// # Panics
    ///
    /// Panics if attached payloads don't have one entry per transaction.
    pub fn run(&self) -> MiningOutcome<P> {
        if self.effective_shards().is_none() && self.threads > 1 {
            // The parallel engine's native form is an arena: take it
            // directly instead of replaying through a collecting sink.
            let owned;
            let payloads = match self.payloads {
                Some(p) => p,
                None => {
                    owned = vec![P::zero(); self.db.len()];
                    &owned
                }
            };
            let (store, completeness) = parallel::mine_arena_bounded(
                self.db,
                payloads,
                &self.params,
                self.threads,
                &self.budget,
                self.cancel.as_ref(),
            );
            return MiningOutcome {
                store,
                completeness,
                shards: None,
            };
        }
        let mut store = ItemsetArena::new();
        let verdict = self.run_into(&mut store);
        MiningOutcome {
            store,
            completeness: verdict.completeness,
            shards: verdict.shards,
        }
    }

    /// Runs the task, streaming every emitted itemset into `sink`.
    ///
    /// Emission order is engine-specific (the parallel and sharded
    /// engines emit in canonical order); the *set* of emissions is
    /// engine-independent. The parallel and sharded engines do not
    /// consult [`ItemsetSink::wants_extensions`] — budgets are the
    /// supported way to bound them (see [`crate::parallel`]).
    ///
    /// # Panics
    ///
    /// Panics if attached payloads don't have one entry per transaction.
    pub fn run_into<S: ItemsetSink<P>>(&self, sink: &mut S) -> MiningVerdict {
        let owned;
        let payloads = match self.payloads {
            Some(p) => p,
            None => {
                owned = vec![P::zero(); self.db.len()];
                &owned
            }
        };
        assert_eq!(
            payloads.len(),
            self.db.len(),
            "payload slice length must match transaction count"
        );

        if let Some(k) = self.effective_shards() {
            let _span = obs::span(Algorithm::Sharded.span_name());
            let source = MemShardSource::new(self.db, payloads, k);
            let (completeness, stats) = sharded::mine_into_bounded(
                &source,
                &self.params,
                self.threads,
                self.prefetch,
                &self.budget,
                self.cancel.as_ref(),
                sink,
            );
            return MiningVerdict {
                completeness,
                shards: Some(stats),
            };
        }

        if self.threads > 1 {
            let (arena, completeness) = parallel::mine_arena_bounded(
                self.db,
                payloads,
                &self.params,
                self.threads,
                &self.budget,
                self.cancel.as_ref(),
            );
            for entry in arena.iter() {
                sink.emit(entry.items, entry.support, entry.payload);
            }
            return MiningVerdict {
                completeness,
                shards: None,
            };
        }

        if self.budget.is_unlimited() && self.cancel.is_none() {
            // Unbounded sequential fast path: no wrapper sink.
            crate::dispatch_mine_into(self.algorithm, self.db, payloads, &self.params, sink);
            return MiningVerdict {
                completeness: Completeness::Complete,
                shards: None,
            };
        }
        let mut bounded = BudgetSink::new(&mut *sink, self.budget);
        if let Some(token) = &self.cancel {
            bounded = bounded.with_cancel(token.clone());
        }
        crate::dispatch_mine_into(
            self.algorithm,
            self.db,
            payloads,
            &self.params,
            &mut bounded,
        );
        MiningVerdict {
            completeness: bounded.verdict(),
            shards: None,
        }
    }

    /// Recounts a previously mined candidate lattice against this task's
    /// database and payloads, streaming each candidate that still meets
    /// the threshold into `sink` — no mining phase runs.
    ///
    /// This is the warm path behind on-disk artifacts: the lattice
    /// depends only on the dataset and the support threshold, so
    /// re-analysis under a new payload vector (a different classifier's
    /// labels) is exactly one streaming recount pass
    /// ([`sharded::recount_into_bounded`]). The task's budget, cancel
    /// token and shard count all apply; emission follows candidate-id
    /// order, so canonical candidates yield canonical output.
    ///
    /// # Panics
    ///
    /// Panics if attached payloads don't have one entry per transaction.
    pub fn recount_into<S: ItemsetSink<P>>(
        &self,
        candidates: &ItemsetArena<()>,
        sink: &mut S,
    ) -> MiningVerdict {
        let owned;
        let payloads = match self.payloads {
            Some(p) => p,
            None => {
                owned = vec![P::zero(); self.db.len()];
                &owned
            }
        };
        assert_eq!(
            payloads.len(),
            self.db.len(),
            "payload slice length must match transaction count"
        );
        let k = self.effective_shards().unwrap_or(1);
        let source = MemShardSource::new(self.db, payloads, k);
        let (completeness, stats) = sharded::recount_into_bounded(
            &source,
            candidates,
            self.params.threshold(),
            self.threads,
            self.prefetch,
            &self.budget,
            self.cancel.as_ref(),
            sink,
        );
        MiningVerdict {
            completeness,
            shards: Some(stats),
        }
    }

    /// [`MiningTask::recount_into`] materialized into an arena.
    pub fn recount(&self, candidates: &ItemsetArena<()>) -> MiningOutcome<P> {
        let mut store = ItemsetArena::new();
        let verdict = self.recount_into(candidates, &mut store);
        MiningOutcome {
            store,
            completeness: verdict.completeness,
            shards: verdict.shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::TruncationReason;
    use crate::itemset::sort_canonical;
    use crate::payload::CountPayload;
    use crate::sink::VecSink;

    fn db() -> TransactionDb {
        TransactionDb::from_rows(
            6,
            &[
                vec![0, 1, 2],
                vec![0, 1],
                vec![0, 3],
                vec![1, 2, 4],
                vec![0, 1, 2, 5],
            ],
        )
    }

    #[test]
    fn default_task_matches_the_naive_oracle() {
        let db = db();
        let params = MiningParams::with_min_support_count(2);
        let mut reference = crate::naive::mine(&db, &vec![(); db.len()], &params);
        reference.sort();
        let mut got = MiningTask::new(&db, 2).run().into_itemsets();
        got.sort();
        assert_eq!(got, reference);
    }

    #[test]
    fn every_backend_agrees_through_the_builder() {
        let db = db();
        let payloads: Vec<CountPayload> = (0..db.len()).map(|t| CountPayload(t as u64)).collect();
        let mut reference =
            crate::eclat::mine(&db, &payloads, &MiningParams::with_min_support_count(2));
        sort_canonical(&mut reference);
        for algorithm in Algorithm::ALL {
            let mut got = MiningTask::new(&db, 2)
                .payloads(&payloads)
                .algorithm(algorithm)
                .run()
                .into_itemsets();
            sort_canonical(&mut got);
            assert_eq!(got, reference, "{algorithm}");
        }
    }

    #[test]
    fn threads_and_shards_compose_with_budgets() {
        let db = db();
        let payloads: Vec<CountPayload> = (0..db.len()).map(|t| CountPayload(t as u64)).collect();
        let mut reference =
            crate::eclat::mine(&db, &payloads, &MiningParams::with_min_support_count(1));
        sort_canonical(&mut reference);
        let threaded = MiningTask::new(&db, 1).payloads(&payloads).threads(4).run();
        assert!(threaded.completeness.is_complete());
        assert!(threaded.shards.is_none());
        assert_eq!(threaded.into_itemsets(), reference);
        let sharded = MiningTask::new(&db, 1)
            .payloads(&payloads)
            .threads(2)
            .shards(3)
            .run();
        assert!(sharded.completeness.is_complete());
        assert_eq!(sharded.shards.expect("sharded run").n_shards, 3);
        assert_eq!(sharded.into_itemsets(), reference);
    }

    #[test]
    fn sharded_algorithm_defaults_the_shard_count() {
        let db = db();
        let outcome = MiningTask::new(&db, 2).algorithm(Algorithm::Sharded).run();
        assert_eq!(
            outcome.shards.expect("sharded run").n_shards,
            sharded::DEFAULT_SHARDS
        );
        let mut got = outcome.into_itemsets();
        got.sort();
        let mut reference = crate::naive::mine(
            &db,
            &vec![(); db.len()],
            &MiningParams::with_min_support_count(2),
        );
        reference.sort();
        assert_eq!(got, reference);
    }

    #[test]
    fn run_into_streams_and_reports_truncation() {
        let db = db();
        let mut sink = VecSink::new();
        let verdict = MiningTask::new(&db, 1)
            .budget(Budget::unlimited().with_max_itemsets(3))
            .run_into(&mut sink);
        assert_eq!(
            verdict.completeness.truncation_reason(),
            Some(TruncationReason::ItemsetLimit)
        );
        assert_eq!(sink.found.len(), 3);
    }

    #[test]
    fn pre_fired_token_cancels_the_sequential_path() {
        let db = db();
        let token = CancelToken::new();
        token.cancel();
        let outcome = MiningTask::new(&db, 1).cancel(token).run();
        assert_eq!(
            outcome.completeness.truncation_reason(),
            Some(TruncationReason::Cancelled)
        );
    }

    #[test]
    fn recount_reproduces_a_mined_run_under_new_payloads() {
        let db = db();
        let old: Vec<CountPayload> = (0..db.len()).map(|t| CountPayload(t as u64)).collect();
        let new: Vec<CountPayload> = (0..db.len()).map(|t| CountPayload(1 << t)).collect();
        let candidates = MiningTask::new(&db, 2)
            .payloads(&old)
            .algorithm(Algorithm::Eclat)
            .run()
            .store
            .to_candidates();
        let mut reference = crate::eclat::mine(&db, &new, &MiningParams::with_min_support_count(2));
        sort_canonical(&mut reference);
        for shards in [None, Some(1), Some(3)] {
            let mut task = MiningTask::new(&db, 2).payloads(&new);
            if let Some(k) = shards {
                task = task.shards(k);
            }
            let outcome = task.recount(&candidates);
            assert!(outcome.completeness.is_complete(), "shards={shards:?}");
            let stats = outcome.shards.as_ref().expect("recount reports stats");
            assert_eq!(stats.shards_mined, 0, "no mining phase ran");
            let mut got = outcome.into_itemsets();
            sort_canonical(&mut got);
            assert_eq!(got, reference, "shards={shards:?}");
        }
    }

    #[test]
    #[should_panic(expected = "payload slice length")]
    fn mismatched_payload_length_panics() {
        let db = db();
        let payloads = [CountPayload(1), CountPayload(2)];
        let _ = MiningTask::new(&db, 2).payloads(&payloads).run();
    }
}
