//! Bounded execution: budgets, cooperative cancellation and graceful
//! degradation.
//!
//! DivExplorer's soundness/completeness guarantee holds *per support
//! threshold*: at a pathologically low threshold the frequent-itemset
//! lattice explodes combinatorially, and an unbounded miner runs until it
//! exhausts memory or the caller gives up. This module makes resource
//! exhaustion a first-class, recoverable outcome instead of a hang:
//!
//! - [`Budget`] bounds a run along four axes — wall-clock time, emitted
//!   itemsets, approximate result-store bytes and lattice depth.
//! - [`CancelToken`] is a shareable flag (`Arc<AtomicBool>`) that any
//!   thread can fire to stop a run cooperatively.
//! - [`BudgetSink`] is a composable [`ItemsetSink`] adapter enforcing both
//!   in `emit` / [`ItemsetSink::wants_extensions`] /
//!   [`ItemsetSink::should_stop`]; it wraps any inner sink.
//! - [`Completeness`] is the verdict: budget-bounded runs never panic and
//!   never return an error-with-nothing — they return the partial result
//!   mined so far, tagged [`Completeness::Truncated`] with the reason.
//!
//! # Enforcement model
//!
//! Emission-side enforcement alone is not enough. Depth-first miners
//! (Eclat, bitset Eclat, FP-growth, the naive oracle) consult
//! `wants_extensions` after every emission, so a `false` from an exhausted
//! `BudgetSink` prunes every subtree immediately. The level-wise
//! ([`crate::apriori`]) and merged-parallel ([`crate::parallel`]) miners
//! apply `wants_extensions` only where their traversal order allows —
//! between levels, or not at all — and can spend unbounded time inside a
//! single counting pass or worker subtree. They therefore poll
//! [`ItemsetSink::should_stop`] at periodic checkpoints (per level, every
//! N transactions, per subtree node), which re-checks the deadline and the
//! cancel token even when no emission has happened for a while.
//!
//! A truncated run's output is always a subset of the unbudgeted run's
//! output with identical supports and payloads, and for the deterministic
//! sequential miners it is exactly an emission-order prefix (verified by
//! differential tests).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::payload::Payload;
use crate::sink::ItemsetSink;
use crate::transaction::ItemId;

/// How often (in emissions) the deadline and cancel token are re-polled
/// from `emit`. Checkpoint-driven polls via `should_stop` are unthrottled.
const POLL_MASK: u64 = 0xF;

/// Resource limits for one mining or exploration run.
///
/// All axes default to unlimited; combine with builder-style setters:
///
/// ```
/// use std::time::Duration;
/// use fpm::Budget;
///
/// let b = Budget::unlimited()
///     .with_timeout(Duration::from_millis(100))
///     .with_max_itemsets(10_000);
/// assert!(!b.is_unlimited());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock limit for the run, measured from the sink's creation.
    pub timeout: Option<Duration>,
    /// Maximum number of itemsets forwarded to the inner sink.
    pub max_itemsets: Option<u64>,
    /// Approximate cap on bytes a collecting store would retain
    /// (items + per-record bookkeeping; payload sizes are not counted).
    pub max_bytes: Option<u64>,
    /// Maximum lattice depth (itemset length) explored.
    pub max_depth: Option<usize>,
}

impl Budget {
    /// A budget with no limits (the identity adapter).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Sets the wall-clock limit.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Sets the emitted-itemset cap.
    pub fn with_max_itemsets(mut self, max: u64) -> Self {
        self.max_itemsets = Some(max);
        self
    }

    /// Sets the approximate result-store byte cap.
    pub fn with_max_bytes(mut self, max: u64) -> Self {
        self.max_bytes = Some(max);
        self
    }

    /// Sets the lattice-depth cap.
    pub fn with_max_depth(mut self, max: usize) -> Self {
        self.max_depth = Some(max);
        self
    }

    /// True iff no axis is limited.
    pub fn is_unlimited(&self) -> bool {
        self.timeout.is_none()
            && self.max_itemsets.is_none()
            && self.max_bytes.is_none()
            && self.max_depth.is_none()
    }
}

/// A shareable cooperative-cancellation flag.
///
/// Clones share the flag; firing [`CancelToken::cancel`] from any thread
/// stops every bounded run holding a clone at its next checkpoint.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-fired token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Fires the token. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True iff [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Why a bounded run stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruncationReason {
    /// The wall-clock budget elapsed.
    Timeout,
    /// The emitted-itemset cap was reached.
    ItemsetLimit,
    /// The approximate result-store byte cap was reached.
    MemoryLimit,
    /// The lattice-depth cap pruned at least one subtree.
    DepthLimit,
    /// A [`CancelToken`] was fired.
    Cancelled,
    /// One or more parallel worker subtrees panicked and were contained;
    /// their shards are missing from the result.
    WorkerPanic,
}

impl std::fmt::Display for TruncationReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TruncationReason::Timeout => "wall-clock budget elapsed",
            TruncationReason::ItemsetLimit => "itemset budget reached",
            TruncationReason::MemoryLimit => "memory budget reached",
            TruncationReason::DepthLimit => "depth budget reached",
            TruncationReason::Cancelled => "cancelled",
            TruncationReason::WorkerPanic => "worker subtree panicked",
        };
        f.write_str(s)
    }
}

/// The verdict of a bounded run: did the miner see the whole frequent
/// lattice, or only part of it?
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Completeness {
    /// Every frequent itemset was emitted; the soundness/completeness
    /// guarantee of Theorem 5.1 holds.
    Complete,
    /// The run stopped early; the emitted itemsets are a subset of the
    /// full result (exact supports/payloads, but not all of them).
    Truncated {
        /// Which limit stopped the run.
        reason: TruncationReason,
        /// Itemsets emitted before stopping.
        emitted: u64,
        /// Wall-clock time spent mining.
        elapsed: Duration,
    },
}

impl Completeness {
    /// True iff the run saw the whole lattice.
    pub fn is_complete(&self) -> bool {
        matches!(self, Completeness::Complete)
    }

    /// True iff the run stopped early.
    pub fn is_truncated(&self) -> bool {
        !self.is_complete()
    }

    /// The truncation reason, if any.
    pub fn truncation_reason(&self) -> Option<TruncationReason> {
        match self {
            Completeness::Complete => None,
            Completeness::Truncated { reason, .. } => Some(*reason),
        }
    }
}

impl std::fmt::Display for Completeness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Completeness::Complete => f.write_str("complete"),
            Completeness::Truncated {
                reason,
                emitted,
                elapsed,
            } => write!(
                f,
                "truncated ({reason}; {emitted} itemsets in {:.1?})",
                elapsed
            ),
        }
    }
}

/// A composable sink adapter enforcing a [`Budget`] and a [`CancelToken`].
///
/// Wrap any inner sink; once a limit trips, every further emission is
/// dropped, `wants_extensions` answers `false` (pruning all depth-first
/// subtrees) and [`ItemsetSink::should_stop`] answers `true` (stopping
/// level-wise and long counting passes at their next checkpoint). The
/// final [`BudgetSink::verdict`] reports what happened.
pub struct BudgetSink<S> {
    inner: S,
    budget: Budget,
    cancel: Option<CancelToken>,
    start: Instant,
    deadline: Option<Instant>,
    emitted: u64,
    bytes: u64,
    stopped: Option<TruncationReason>,
    depth_pruned: bool,
}

/// Approximate retained bytes for one stored itemset: its items plus a
/// record's fixed bookkeeping (offset/len/support in an arena).
fn itemset_cost(items: &[ItemId]) -> u64 {
    (std::mem::size_of_val(items) + 24) as u64
}

impl<S> BudgetSink<S> {
    /// Wraps `inner`, starting the wall clock now.
    pub fn new(inner: S, budget: Budget) -> Self {
        let start = Instant::now();
        BudgetSink {
            inner,
            budget,
            cancel: None,
            start,
            deadline: budget.timeout.map(|t| start + t),
            emitted: 0,
            bytes: 0,
            stopped: None,
            depth_pruned: false,
        }
    }

    /// Attaches a cancellation token (checked at every poll).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Itemsets forwarded to the inner sink so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The verdict so far: [`Completeness::Complete`] if no limit has
    /// tripped, otherwise the truncation record.
    pub fn verdict(&self) -> Completeness {
        let reason = match self.stopped {
            Some(reason) => reason,
            None if self.depth_pruned => TruncationReason::DepthLimit,
            None => return Completeness::Complete,
        };
        Completeness::Truncated {
            reason,
            emitted: self.emitted,
            elapsed: self.start.elapsed(),
        }
    }

    /// Recovers the wrapped sink.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Borrows the wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Re-checks the cancel token and the deadline. Unthrottled — callers
    /// on hot paths throttle themselves (see `POLL_MASK`).
    fn poll(&mut self) {
        if self.stopped.is_some() {
            return;
        }
        obs::counter("fpm.budget_checkpoints", 1);
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            self.stopped = Some(TruncationReason::Cancelled);
        } else if self.deadline.is_some_and(|d| Instant::now() >= d) {
            self.stopped = Some(TruncationReason::Timeout);
        }
    }
}

impl<P: Payload, S: ItemsetSink<P>> ItemsetSink<P> for BudgetSink<S> {
    fn emit(&mut self, items: &[ItemId], support: u64, payload: &P) {
        if self.stopped.is_some() {
            return;
        }
        if self.budget.max_depth.is_some_and(|max| items.len() > max) {
            // Advisory-pruning miners can still generate over-deep
            // itemsets; suppress them and record the degradation.
            self.depth_pruned = true;
            return;
        }
        if self
            .budget
            .max_itemsets
            .is_some_and(|max| self.emitted >= max)
        {
            self.stopped = Some(TruncationReason::ItemsetLimit);
            return;
        }
        let bytes = self.bytes + itemset_cost(items);
        if self.budget.max_bytes.is_some_and(|max| bytes > max) {
            self.stopped = Some(TruncationReason::MemoryLimit);
            return;
        }
        if self.emitted & POLL_MASK == 0 {
            self.poll();
            if self.stopped.is_some() {
                return;
            }
        }
        self.bytes = bytes;
        self.emitted += 1;
        self.inner.emit(items, support, payload);
    }

    fn wants_extensions(&mut self, items: &[ItemId], support: u64) -> bool {
        if self.stopped.is_some() {
            return false;
        }
        if self.budget.max_depth.is_some_and(|max| items.len() >= max) {
            self.depth_pruned = true;
            return false;
        }
        self.inner.wants_extensions(items, support)
    }

    fn should_stop(&mut self) -> bool {
        self.poll();
        self.stopped.is_some() || self.inner.should_stop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::VecSink;
    use crate::transaction::TransactionDb;
    use crate::{Algorithm, MiningParams};

    fn db() -> TransactionDb {
        let rows: Vec<Vec<u32>> = (0..32)
            .map(|t| {
                (0..6)
                    .filter(|&i| (t >> i) & 1 == 0 || t % 3 == 0)
                    .collect()
            })
            .collect();
        TransactionDb::from_rows(6, &rows)
    }

    #[test]
    fn unlimited_budget_is_the_identity() {
        let db = db();
        let params = MiningParams::with_min_support_count(2);
        let mut plain = VecSink::new();
        crate::MiningTask::with_params(&db, params.clone())
            .algorithm(Algorithm::Eclat)
            .run_into(&mut plain);
        let mut sink = BudgetSink::new(VecSink::new(), Budget::unlimited());
        crate::MiningTask::with_params(&db, params.clone())
            .algorithm(Algorithm::Eclat)
            .run_into(&mut sink);
        assert_eq!(sink.verdict(), Completeness::Complete);
        assert_eq!(sink.into_inner().found, plain.found);
    }

    #[test]
    fn max_itemsets_truncates_to_an_emission_prefix() {
        let db = db();
        let params = MiningParams::with_min_support_count(1);
        let mut plain = VecSink::new();
        crate::MiningTask::with_params(&db, params.clone())
            .algorithm(Algorithm::Eclat)
            .run_into(&mut plain);
        assert!(plain.found.len() > 10);
        let budget = Budget::unlimited().with_max_itemsets(7);
        let mut sink = BudgetSink::new(VecSink::new(), budget);
        crate::MiningTask::with_params(&db, params.clone())
            .algorithm(Algorithm::Eclat)
            .run_into(&mut sink);
        match sink.verdict() {
            Completeness::Truncated {
                reason: TruncationReason::ItemsetLimit,
                emitted: 7,
                ..
            } => {}
            other => panic!("unexpected verdict {other:?}"),
        }
        assert_eq!(sink.into_inner().found, plain.found[..7]);
    }

    #[test]
    fn max_bytes_truncates() {
        let db = db();
        let params = MiningParams::with_min_support_count(1);
        let budget = Budget::unlimited().with_max_bytes(200);
        let mut sink = BudgetSink::new(VecSink::new(), budget);
        crate::MiningTask::with_params(&db, params.clone())
            .algorithm(Algorithm::FpGrowth)
            .run_into(&mut sink);
        assert_eq!(
            sink.verdict().truncation_reason(),
            Some(TruncationReason::MemoryLimit)
        );
        assert!(
            sink.emitted() > 0,
            "partial results, not error-with-nothing"
        );
    }

    #[test]
    fn max_depth_prunes_and_reports() {
        let db = db();
        let params = MiningParams::with_min_support_count(1);
        let budget = Budget::unlimited().with_max_depth(2);
        let mut sink = BudgetSink::new(VecSink::new(), budget);
        crate::MiningTask::with_params(&db, params.clone())
            .algorithm(Algorithm::Eclat)
            .run_into(&mut sink);
        assert_eq!(
            sink.verdict().truncation_reason(),
            Some(TruncationReason::DepthLimit)
        );
        assert!(sink.inner().found.iter().all(|fi| fi.items.len() <= 2));
    }

    #[test]
    fn cancel_token_stops_the_run() {
        let db = db();
        let params = MiningParams::with_min_support_count(1);
        let token = CancelToken::new();
        token.cancel();
        let mut sink = BudgetSink::new(VecSink::new(), Budget::unlimited()).with_cancel(token);
        crate::MiningTask::with_params(&db, params.clone())
            .algorithm(Algorithm::Eclat)
            .run_into(&mut sink);
        assert_eq!(
            sink.verdict().truncation_reason(),
            Some(TruncationReason::Cancelled)
        );
    }

    #[test]
    fn elapsed_deadline_times_out() {
        let db = db();
        let params = MiningParams::with_min_support_count(1);
        let budget = Budget::unlimited().with_timeout(Duration::ZERO);
        let mut sink = BudgetSink::new(VecSink::new(), budget);
        crate::MiningTask::with_params(&db, params.clone())
            .algorithm(Algorithm::Apriori)
            .run_into(&mut sink);
        assert_eq!(
            sink.verdict().truncation_reason(),
            Some(TruncationReason::Timeout)
        );
    }

    #[test]
    fn completeness_display_is_informative() {
        assert_eq!(Completeness::Complete.to_string(), "complete");
        let t = Completeness::Truncated {
            reason: TruncationReason::Timeout,
            emitted: 5,
            elapsed: Duration::from_millis(100),
        };
        assert!(t.to_string().contains("truncated"));
        assert!(t.to_string().contains("5 itemsets"));
    }
}
