//! Arena-backed itemset store: the default collecting sink.
//!
//! [`ItemsetArena`] keeps every stored itemset's items in one flat
//! `Vec<ItemId>`, with a per-itemset record of `(offset, len, support,
//! payload)`. Compared to `Vec<FrequentItemset<P>>` this removes the
//! per-itemset heap allocation (the seed's dominant allocation hot
//! path), keeps items contiguous for cache-friendly iteration, and
//! supports `O(1)` id-based access plus an itemset → id hash index that
//! is built once and shared by every lookup (closed/maximal extraction,
//! subset queries in the explorer).

use std::sync::OnceLock;

use crate::itemset::FrequentItemset;
use crate::payload::Payload;
use crate::sink::ItemsetSink;
use crate::transaction::ItemId;

/// One stored itemset: a view into the arena's flat item buffer.
#[derive(Debug, Clone)]
struct Record<P> {
    offset: usize,
    len: u32,
    support: u64,
    payload: P,
}

/// A borrowed view of one stored itemset.
#[derive(Debug, Clone, Copy)]
pub struct ArenaEntry<'a, P> {
    /// Canonical (sorted ascending) item ids.
    pub items: &'a [ItemId],
    pub support: u64,
    pub payload: &'a P,
}

/// Flat store of itemsets with supports and payloads.
///
/// Ids are assigned in insertion order (`0..len`). [`Self::sort_canonical`]
/// permutes the records (not the item buffer) into canonical order —
/// by length, then lexicographically — renumbering ids accordingly.
#[derive(Debug, Default)]
pub struct ItemsetArena<P> {
    items: Vec<ItemId>,
    recs: Vec<Record<P>>,
    /// Lazily built itemset → id index; invalidated by any mutation.
    index: OnceLock<SliceIndex>,
}

impl<P> ItemsetArena<P> {
    pub fn new() -> Self {
        ItemsetArena {
            items: Vec::new(),
            recs: Vec::new(),
            index: OnceLock::new(),
        }
    }

    /// Pre-sizes for `n_itemsets` records over ~`n_items` total items.
    pub fn with_capacity(n_itemsets: usize, n_items: usize) -> Self {
        ItemsetArena {
            items: Vec::with_capacity(n_items),
            recs: Vec::with_capacity(n_itemsets),
            index: OnceLock::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.recs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// Total items stored across all itemsets.
    pub fn total_items(&self) -> usize {
        self.items.len()
    }

    /// Approximate heap footprint: the flat item buffer plus the record
    /// table, counted at capacity (what the allocator actually holds).
    pub fn approx_bytes(&self) -> u64 {
        (self.items.capacity() * std::mem::size_of::<ItemId>()
            + self.recs.capacity() * std::mem::size_of::<Record<P>>()) as u64
    }

    /// Appends an itemset (`items` must be in canonical order) and
    /// returns its id.
    pub fn push(&mut self, items: &[ItemId], support: u64, payload: P) -> usize {
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "items must be canonical"
        );
        self.index.take();
        let offset = self.items.len();
        self.items.extend_from_slice(items);
        self.recs.push(Record {
            offset,
            len: items.len() as u32,
            support,
            payload,
        });
        self.recs.len() - 1
    }

    /// The items of itemset `id`.
    pub fn items(&self, id: usize) -> &[ItemId] {
        let rec = &self.recs[id];
        &self.items[rec.offset..rec.offset + rec.len as usize]
    }

    pub fn support(&self, id: usize) -> u64 {
        self.recs[id].support
    }

    pub fn payload(&self, id: usize) -> &P {
        &self.recs[id].payload
    }

    /// Replaces the payload of itemset `id`, returning the old one.
    pub fn set_payload(&mut self, id: usize, payload: P) -> P {
        std::mem::replace(&mut self.recs[id].payload, payload)
    }

    pub fn entry(&self, id: usize) -> ArenaEntry<'_, P> {
        let rec = &self.recs[id];
        ArenaEntry {
            items: &self.items[rec.offset..rec.offset + rec.len as usize],
            support: rec.support,
            payload: &rec.payload,
        }
    }

    /// Iterates entries in id order.
    pub fn iter(&self) -> impl Iterator<Item = ArenaEntry<'_, P>> + '_ {
        (0..self.recs.len()).map(move |id| self.entry(id))
    }

    /// Sorts records into canonical order (length, then lexicographic
    /// items). Only the records permute; the flat item buffer stays
    /// put. Ids refer to the new order afterwards.
    pub fn sort_canonical(&mut self) {
        self.index.take();
        let items = std::mem::take(&mut self.items);
        self.recs.sort_by(|a, b| {
            let ia = &items[a.offset..a.offset + a.len as usize];
            let ib = &items[b.offset..b.offset + b.len as usize];
            ia.len().cmp(&ib.len()).then_with(|| ia.cmp(ib))
        });
        self.items = items;
    }

    /// Appends every record of `other`, preserving their order. Ids of
    /// `self` are unchanged; `other`'s itemsets get the next ids.
    pub fn absorb(&mut self, other: ItemsetArena<P>) {
        self.index.take();
        let shift = self.items.len();
        self.items.extend_from_slice(&other.items);
        self.recs.extend(other.recs.into_iter().map(|mut rec| {
            rec.offset += shift;
            rec
        }));
    }

    /// Looks up an itemset (canonical item order) and returns its id.
    ///
    /// The first lookup builds a hash index over all stored itemsets;
    /// subsequent lookups are `O(1)`. Any mutation invalidates the
    /// index, and the next `find` rebuilds it.
    pub fn find(&self, items: &[ItemId]) -> Option<usize> {
        let index = self.index.get_or_init(|| SliceIndex::build(self));
        index.find(self, items)
    }

    /// Materializes the arena into the seed representation (one `Vec`
    /// per itemset), consuming it.
    pub fn into_itemsets(self) -> Vec<FrequentItemset<P>> {
        let items = self.items;
        self.recs
            .into_iter()
            .map(|rec| FrequentItemset {
                items: items[rec.offset..rec.offset + rec.len as usize].to_vec(),
                support: rec.support,
                payload: rec.payload,
            })
            .collect()
    }

    /// Copies the lattice shape — items and supports, no payloads — into
    /// a unit-payload arena: the form persisted by on-disk artifacts and
    /// consumed by [`crate::MiningTask::recount`]. Record order is
    /// preserved.
    pub fn to_candidates(&self) -> ItemsetArena<()> {
        let mut out = ItemsetArena::with_capacity(self.len(), self.total_items());
        for id in 0..self.len() {
            out.push(self.items(id), self.support(id), ());
        }
        out
    }

    /// Builds an arena from the seed representation.
    pub fn from_itemsets(found: &[FrequentItemset<P>]) -> Self
    where
        P: Clone,
    {
        let total: usize = found.iter().map(|fi| fi.items.len()).sum();
        let mut arena = ItemsetArena::with_capacity(found.len(), total);
        for fi in found {
            arena.push(&fi.items, fi.support, fi.payload.clone());
        }
        arena
    }
}

// Manual impl: `OnceLock<SliceIndex>` is not `Clone`; the copy starts
// with an empty index and rebuilds it on its first `find`.
impl<P: Clone> Clone for ItemsetArena<P> {
    fn clone(&self) -> Self {
        ItemsetArena {
            items: self.items.clone(),
            recs: self.recs.clone(),
            index: OnceLock::new(),
        }
    }
}

impl<P: Payload> ItemsetSink<P> for ItemsetArena<P> {
    fn emit(&mut self, items: &[ItemId], support: u64, payload: &P) {
        self.push(items, support, payload.clone());
    }
}

// ---------------------------------------------------------------------
// Slice index

/// Open-addressing hash table mapping an itemset slice to its arena id.
///
/// Stored as `id + 1` (0 = empty slot) so the table is a plain `Vec<u32>`
/// with no self-referential borrows into the arena.
#[derive(Debug)]
struct SliceIndex {
    slots: Vec<u32>,
    mask: usize,
}

fn hash_items(items: &[ItemId]) -> u64 {
    use std::hash::Hasher;
    let mut h = rustc_hash::FxHasher::default();
    for &i in items {
        h.write_u32(i);
    }
    h.finish()
}

impl SliceIndex {
    fn build<P>(arena: &ItemsetArena<P>) -> Self {
        let capacity = (arena.len() * 2).next_power_of_two().max(8);
        let mut index = SliceIndex {
            slots: vec![0; capacity],
            mask: capacity - 1,
        };
        for id in 0..arena.len() {
            index.insert(arena, id);
        }
        index
    }

    fn insert<P>(&mut self, arena: &ItemsetArena<P>, id: usize) {
        let items = arena.items(id);
        let mut slot = hash_items(items) as usize & self.mask;
        loop {
            match self.slots[slot] {
                0 => {
                    self.slots[slot] = (id + 1) as u32;
                    return;
                }
                occupied => {
                    // Duplicates keep the first id, matching the seed's
                    // index_by_itemset insert-wins-last... the seed used
                    // HashMap::insert (last wins); keep last for parity.
                    if arena.items((occupied - 1) as usize) == items {
                        self.slots[slot] = (id + 1) as u32;
                        return;
                    }
                }
            }
            slot = (slot + 1) & self.mask;
        }
    }

    fn find<P>(&self, arena: &ItemsetArena<P>, items: &[ItemId]) -> Option<usize> {
        let mut slot = hash_items(items) as usize & self.mask;
        loop {
            match self.slots[slot] {
                0 => return None,
                occupied => {
                    let id = (occupied - 1) as usize;
                    if arena.items(id) == items {
                        return Some(id);
                    }
                }
            }
            slot = (slot + 1) & self.mask;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::CountPayload;
    use crate::transaction::TransactionDb;
    use crate::{Algorithm, MiningParams};

    fn sample_arena() -> ItemsetArena<CountPayload> {
        let mut arena = ItemsetArena::new();
        arena.push(&[0], 5, CountPayload(1));
        arena.push(&[1], 4, CountPayload(2));
        arena.push(&[0, 1], 3, CountPayload(3));
        arena.push(&[0, 2], 2, CountPayload(4));
        arena
    }

    #[test]
    fn push_and_access() {
        let arena = sample_arena();
        assert_eq!(arena.len(), 4);
        assert_eq!(arena.total_items(), 6);
        assert_eq!(arena.items(2), &[0, 1]);
        assert_eq!(arena.support(2), 3);
        assert_eq!(*arena.payload(3), CountPayload(4));
        let entry = arena.entry(0);
        assert_eq!((entry.items, entry.support), (&[0u32][..], 5));
    }

    #[test]
    fn find_uses_the_shared_index() {
        let arena = sample_arena();
        assert_eq!(arena.find(&[0, 1]), Some(2));
        assert_eq!(arena.find(&[1]), Some(1));
        assert_eq!(arena.find(&[2]), None);
        assert_eq!(arena.find(&[]), None);
    }

    #[test]
    fn mutation_invalidates_the_index() {
        let mut arena = sample_arena();
        assert_eq!(arena.find(&[0, 2]), Some(3));
        arena.push(&[1, 2], 1, CountPayload(9));
        assert_eq!(arena.find(&[1, 2]), Some(4));
        assert_eq!(arena.find(&[0, 1]), Some(2));
    }

    #[test]
    fn sort_canonical_matches_vec_sort() {
        let mut arena = ItemsetArena::new();
        arena.push(&[2], 1, ());
        arena.push(&[0, 1], 1, ());
        arena.push(&[0], 1, ());
        arena.push(&[0, 2], 1, ());
        arena.sort_canonical();
        let order: Vec<&[ItemId]> = arena.iter().map(|e| e.items).collect();
        assert_eq!(order, vec![&[0][..], &[2], &[0, 1], &[0, 2]]);
        assert_eq!(arena.find(&[0, 1]), Some(2));
    }

    #[test]
    fn absorb_appends_with_shifted_offsets() {
        let mut a = sample_arena();
        let mut b = ItemsetArena::new();
        b.push(&[7], 9, CountPayload(7));
        b.push(&[7, 8], 8, CountPayload(8));
        a.absorb(b);
        assert_eq!(a.len(), 6);
        assert_eq!(a.items(4), &[7]);
        assert_eq!(a.items(5), &[7, 8]);
        assert_eq!(a.find(&[7, 8]), Some(5));
    }

    #[test]
    fn roundtrip_through_itemsets() {
        let db = TransactionDb::from_rows(4, &[vec![0, 1, 2], vec![0, 1], vec![0, 3], vec![1, 2]]);
        let params = MiningParams::with_min_support_count(1);
        let payloads: Vec<CountPayload> = (0..db.len()).map(|t| CountPayload(1 << t)).collect();
        let found = crate::MiningTask::with_params(&db, params.clone())
            .payloads(&payloads)
            .algorithm(Algorithm::Eclat)
            .run()
            .into_itemsets();
        let arena = ItemsetArena::from_itemsets(&found);
        assert_eq!(arena.into_itemsets(), found);
    }
}
