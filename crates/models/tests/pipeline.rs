//! Cross-module integration tests for the classifier substrate: every
//! learner through the same train/evaluate pipeline with ROC, calibration,
//! cross-validation and permutation importance.

use models::{
    auc, calibration, cross_validate, permutation_importance, Classifier, ConfusionMatrix,
    DecisionTree, DecisionTreeParams, FeatureMatrix, GaussianNaiveBayes, GbdtParams,
    GradientBoostedTrees, LogisticRegression, LogisticRegressionParams, Mlp, MlpParams,
    RandomForest, RandomForestParams, RocCurve,
};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// A noisy two-cluster problem every learner should handle.
fn problem(n: usize, seed: u64) -> (FeatureMatrix, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let label = rng.gen::<bool>();
        let center = if label { 1.5 } else { 0.0 };
        rows.push(vec![
            center + rng.gen_range(-1.0..1.0),
            center + rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0), // noise feature
        ]);
        y.push(label);
    }
    (FeatureMatrix::from_rows(&rows), y)
}

fn all_models(x: &FeatureMatrix, y: &[bool]) -> Vec<(&'static str, Box<dyn Classifier>)> {
    vec![
        (
            "tree",
            Box::new(DecisionTree::fit(
                x,
                y,
                &DecisionTreeParams {
                    max_depth: Some(6),
                    ..Default::default()
                },
                1,
            )),
        ),
        (
            "forest",
            Box::new(RandomForest::fit(
                x,
                y,
                &RandomForestParams {
                    n_trees: 10,
                    max_depth: Some(6),
                    ..Default::default()
                },
                1,
            )),
        ),
        (
            "gbdt",
            Box::new(GradientBoostedTrees::fit(x, y, &GbdtParams::default())),
        ),
        (
            "logistic",
            Box::new(LogisticRegression::fit(
                x,
                y,
                &LogisticRegressionParams::default(),
            )),
        ),
        (
            "mlp",
            Box::new(Mlp::fit(
                x,
                y,
                &MlpParams {
                    epochs: 30,
                    ..Default::default()
                },
                1,
            )),
        ),
        ("bayes", Box::new(GaussianNaiveBayes::fit(x, y))),
    ]
}

#[test]
fn every_learner_beats_chance_with_sane_probabilities() {
    let (x, y) = problem(600, 10);
    for (name, model) in all_models(&x, &y) {
        let proba = model.predict_proba_batch(&x);
        assert!(
            proba.iter().all(|p| (0.0..=1.0).contains(p)),
            "{name}: probability out of range"
        );
        let model_auc = auc(&proba, &y);
        assert!(model_auc > 0.75, "{name}: AUC {model_auc}");
        let cm = ConfusionMatrix::from_labels(&y, &model.predict_batch(&x));
        assert!(cm.accuracy() > 0.7, "{name}: accuracy {}", cm.accuracy());
    }
}

#[test]
fn roc_curves_are_monotone_for_every_learner() {
    let (x, y) = problem(400, 11);
    for (name, model) in all_models(&x, &y) {
        let proba = model.predict_proba_batch(&x);
        let curve = RocCurve::new(&proba, &y);
        assert!(
            curve
                .points
                .windows(2)
                .all(|w| w[1].fpr >= w[0].fpr && w[1].tpr >= w[0].tpr),
            "{name}: non-monotone ROC"
        );
    }
}

#[test]
fn calibration_is_reasonable_for_probabilistic_learners() {
    let (x, y) = problem(800, 12);
    for (name, model) in all_models(&x, &y) {
        let proba = model.predict_proba_batch(&x);
        let c = calibration(&proba, &y, 10);
        assert!(c.brier_score < 0.25, "{name}: Brier {}", c.brier_score);
        assert!(c.ece < 0.5, "{name}: ECE {}", c.ece);
        let total: usize = c.bins.iter().map(|b| b.count).sum();
        assert_eq!(total, y.len(), "{name}: bins must cover all instances");
    }
}

#[test]
fn cross_validation_generalization_is_close_to_training_fit() {
    let (x, y) = problem(500, 13);
    let folds = cross_validate(&x, &y, 5, 13, |xt, yt| {
        DecisionTree::fit(
            xt,
            yt,
            &DecisionTreeParams {
                max_depth: Some(5),
                ..Default::default()
            },
            0,
        )
    });
    assert_eq!(folds.len(), 5);
    let mean_acc = folds.iter().map(|cm| cm.accuracy()).sum::<f64>() / 5.0;
    assert!(mean_acc > 0.7, "cv accuracy {mean_acc}");
}

#[test]
fn permutation_importance_ignores_the_noise_feature() {
    let (x, y) = problem(500, 14);
    let forest = RandomForest::fit(
        &x,
        &y,
        &RandomForestParams {
            n_trees: 10,
            max_depth: Some(6),
            ..Default::default()
        },
        2,
    );
    let fi = permutation_importance(&forest, &x, &y, 5, 2);
    let ranking = fi.ranking();
    // The noise feature (index 2) must rank last.
    assert_eq!(ranking[2].0, 2, "ranking: {ranking:?}");
    assert!(fi.importances[0] > fi.importances[2]);
    assert!(fi.importances[1] > fi.importances[2]);
}
