//! Train/test splitting.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Row indices of a train/test partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainTestSplit {
    /// Training row indices.
    pub train: Vec<usize>,
    /// Test row indices.
    pub test: Vec<usize>,
}

/// Randomly partitions `0..n` into train and test sets, with
/// `round(n · test_fraction)` test rows.
///
/// # Panics
///
/// Panics if `test_fraction` is outside `[0, 1]` or `n == 0`.
pub fn train_test_split(n: usize, test_fraction: f64, seed: u64) -> TrainTestSplit {
    assert!(n > 0, "need at least one row");
    assert!(
        (0.0..=1.0).contains(&test_fraction),
        "test fraction must be in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(&mut rng);
    let n_test = (n as f64 * test_fraction).round() as usize;
    let test = indices[..n_test].to_vec();
    let train = indices[n_test..].to_vec();
    TrainTestSplit { train, test }
}

/// Stratified variant: the positive fraction of `labels` is preserved
/// (within one instance) in both sides.
pub fn stratified_split(labels: &[bool], test_fraction: f64, seed: u64) -> TrainTestSplit {
    assert!(!labels.is_empty(), "need at least one row");
    assert!(
        (0.0..=1.0).contains(&test_fraction),
        "test fraction must be in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pos: Vec<usize> = (0..labels.len()).filter(|&i| labels[i]).collect();
    let mut neg: Vec<usize> = (0..labels.len()).filter(|&i| !labels[i]).collect();
    pos.shuffle(&mut rng);
    neg.shuffle(&mut rng);
    let n_pos_test = (pos.len() as f64 * test_fraction).round() as usize;
    let n_neg_test = (neg.len() as f64 * test_fraction).round() as usize;
    let mut test: Vec<usize> = pos[..n_pos_test].to_vec();
    test.extend_from_slice(&neg[..n_neg_test]);
    let mut train: Vec<usize> = pos[n_pos_test..].to_vec();
    train.extend_from_slice(&neg[n_neg_test..]);
    test.sort_unstable();
    train.sort_unstable();
    TrainTestSplit { train, test }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_a_partition() {
        let s = train_test_split(100, 0.3, 7);
        assert_eq!(s.test.len(), 30);
        assert_eq!(s.train.len(), 70);
        let mut all: Vec<usize> = s.train.iter().chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        assert_eq!(train_test_split(50, 0.2, 1), train_test_split(50, 0.2, 1));
        assert_ne!(train_test_split(50, 0.2, 1), train_test_split(50, 0.2, 2));
    }

    #[test]
    fn stratified_preserves_class_balance() {
        let labels: Vec<bool> = (0..100).map(|i| i < 20).collect();
        let s = stratified_split(&labels, 0.25, 3);
        let test_pos = s.test.iter().filter(|&&i| labels[i]).count();
        assert_eq!(test_pos, 5);
        assert_eq!(s.test.len(), 25);
        let mut all: Vec<usize> = s.train.iter().chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn extreme_fractions() {
        let s = train_test_split(10, 0.0, 0);
        assert!(s.test.is_empty());
        assert_eq!(s.train.len(), 10);
        let s = train_test_split(10, 1.0, 0);
        assert!(s.train.is_empty());
    }

    #[test]
    #[should_panic(expected = "test fraction")]
    fn invalid_fraction_panics() {
        let _ = train_test_split(10, 1.5, 0);
    }
}
