//! A dense row-major feature matrix.

/// A dense `n_rows × n_cols` matrix of `f64` features, stored row-major in a
/// single allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    n_rows: usize,
    n_cols: usize,
    data: Vec<f64>,
}

impl FeatureMatrix {
    /// An empty matrix with a fixed column count.
    pub fn new(n_cols: usize) -> Self {
        FeatureMatrix {
            n_rows: 0,
            n_cols,
            data: Vec::new(),
        }
    }

    /// Builds a matrix from explicit rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows<R: AsRef<[f64]>>(rows: &[R]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let n_cols = rows[0].as_ref().len();
        let mut m = FeatureMatrix::new(n_cols);
        for row in rows {
            m.push_row(row.as_ref());
        }
        m
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length is not a multiple of `n_cols`.
    pub fn from_flat(n_cols: usize, data: Vec<f64>) -> Self {
        assert!(n_cols > 0, "need at least one column");
        assert_eq!(data.len() % n_cols, 0, "ragged buffer");
        FeatureMatrix {
            n_rows: data.len() / n_cols,
            n_cols,
            data,
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the column count.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.n_cols, "row length mismatch");
        self.data.extend_from_slice(row);
        self.n_rows += 1;
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// The row at index `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.n_cols..(r + 1) * self.n_cols]
    }

    /// The value at `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.n_cols + c]
    }

    /// A new matrix containing the selected rows, in order.
    pub fn select_rows(&self, indices: &[usize]) -> FeatureMatrix {
        let mut out = FeatureMatrix::new(self.n_cols);
        out.data.reserve(indices.len() * self.n_cols);
        for &r in indices {
            out.push_row(self.row(r));
        }
        out
    }

    /// Per-column means.
    pub fn column_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.n_cols];
        for r in 0..self.n_rows {
            for (c, &v) in self.row(r).iter().enumerate() {
                means[c] += v;
            }
        }
        for m in &mut means {
            *m /= self.n_rows.max(1) as f64;
        }
        means
    }

    /// Per-column standard deviations (population; zero-variance columns
    /// report 1.0 so standardization is a no-op on them).
    pub fn column_stds(&self) -> Vec<f64> {
        let means = self.column_means();
        let mut vars = vec![0.0; self.n_cols];
        for r in 0..self.n_rows {
            for (c, &v) in self.row(r).iter().enumerate() {
                let d = v - means[c];
                vars[c] += d * d;
            }
        }
        vars.iter()
            .map(|&v| {
                let s = (v / self.n_rows.max(1) as f64).sqrt();
                if s == 0.0 {
                    1.0
                } else {
                    s
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_round_trips() {
        let m = FeatureMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
    }

    #[test]
    fn select_rows_preserves_order() {
        let m = FeatureMatrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[2.0]);
        assert_eq!(s.row(1), &[0.0]);
    }

    #[test]
    fn means_and_stds() {
        let m = FeatureMatrix::from_rows(&[vec![0.0, 5.0], vec![2.0, 5.0]]);
        assert_eq!(m.column_means(), vec![1.0, 5.0]);
        let stds = m.column_stds();
        assert_eq!(stds[0], 1.0);
        assert_eq!(stds[1], 1.0); // zero variance -> 1.0 sentinel
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn ragged_push_panics() {
        let mut m = FeatureMatrix::new(2);
        m.push_row(&[1.0]);
    }

    #[test]
    fn from_flat_validates_shape() {
        let m = FeatureMatrix::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }
}
