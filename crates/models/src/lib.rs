//! Classifier substrate for the DivExplorer reproduction.
//!
//! The paper analyzes classifiers as *black boxes*: all DivExplorer needs is
//! the vector of predicted labels `u`. This crate supplies the learners used
//! in the paper's experiments — a random forest "with default parameters"
//! for the tabular benchmarks (§6.1) and a multi-layer perceptron for the
//! bias-injection user study (§6.6) — plus a CART decision tree and logistic
//! regression, all implemented from scratch.
//!
//! # Example
//!
//! ```
//! use models::{Classifier, FeatureMatrix, RandomForest, RandomForestParams};
//!
//! // XOR-ish data: class is x0 > 0.5.
//! let x = FeatureMatrix::from_rows(&[
//!     vec![0.1, 0.0], vec![0.2, 1.0], vec![0.8, 0.0], vec![0.9, 1.0],
//!     vec![0.3, 0.5], vec![0.7, 0.5], vec![0.4, 0.2], vec![0.6, 0.8],
//! ]);
//! let y = vec![false, false, true, true, false, true, false, true];
//! let forest = RandomForest::fit(&x, &y, &RandomForestParams::default(), 42);
//! let predictions = forest.predict_batch(&x);
//! assert_eq!(predictions, y);
//! ```

pub mod calibration;
pub mod cv;
pub mod forest;
pub mod gbdt;
pub mod importance;
pub mod logistic;
pub mod matrix;
pub mod metrics;
pub mod mlp;
pub mod naive_bayes;
pub mod roc;
pub mod split;
pub mod tree;

pub use calibration::{calibration, Calibration, CalibrationBin};
pub use cv::{cross_validate, cv_accuracy, KFold};
pub use forest::{RandomForest, RandomForestParams};
pub use gbdt::{GbdtParams, GradientBoostedTrees};
pub use importance::{permutation_importance, FeatureImportance};
pub use logistic::{LogisticRegression, LogisticRegressionParams};
pub use matrix::FeatureMatrix;
pub use metrics::ConfusionMatrix;
pub use mlp::{Mlp, MlpParams};
pub use naive_bayes::GaussianNaiveBayes;
pub use roc::{auc, RocCurve, RocPoint};
pub use split::{train_test_split, TrainTestSplit};
pub use tree::{DecisionTree, DecisionTreeParams};

/// A trained binary classifier: the "black box" analyzed by DivExplorer.
pub trait Classifier {
    /// Estimated probability of the positive class for one feature row.
    fn predict_proba(&self, row: &[f64]) -> f64;

    /// Hard prediction with the conventional 0.5 threshold.
    fn predict_row(&self, row: &[f64]) -> bool {
        self.predict_proba(row) >= 0.5
    }

    /// Hard predictions for every row of `x`.
    fn predict_batch(&self, x: &FeatureMatrix) -> Vec<bool> {
        (0..x.n_rows())
            .map(|r| self.predict_row(x.row(r)))
            .collect()
    }

    /// Probabilities for every row of `x`.
    fn predict_proba_batch(&self, x: &FeatureMatrix) -> Vec<f64> {
        (0..x.n_rows())
            .map(|r| self.predict_proba(x.row(r)))
            .collect()
    }
}

/// Per-instance log loss (binary cross-entropy), clipped for stability —
/// the classifier loss Slice Finder compares between a slice and its
/// complement.
pub fn log_loss(y_true: bool, proba: f64) -> f64 {
    let p = proba.clamp(1e-12, 1.0 - 1e-12);
    if y_true {
        -p.ln()
    } else {
        -(1.0 - p).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_loss_rewards_confident_correct_predictions() {
        assert!(log_loss(true, 0.99) < log_loss(true, 0.6));
        assert!(log_loss(false, 0.01) < log_loss(false, 0.4));
        assert!(log_loss(true, 0.01) > log_loss(true, 0.99));
    }

    #[test]
    fn log_loss_is_finite_at_extremes() {
        assert!(log_loss(true, 0.0).is_finite());
        assert!(log_loss(false, 1.0).is_finite());
    }
}
