//! L2-regularized logistic regression trained by full-batch gradient
//! descent on standardized features.

use crate::matrix::FeatureMatrix;
use crate::Classifier;

/// Hyper-parameters of [`LogisticRegression::fit`].
#[derive(Debug, Clone)]
pub struct LogisticRegressionParams {
    /// Gradient-descent step size.
    pub learning_rate: f64,
    /// Number of full-batch epochs.
    pub epochs: usize,
    /// L2 penalty strength.
    pub l2: f64,
}

impl Default for LogisticRegressionParams {
    fn default() -> Self {
        LogisticRegressionParams {
            learning_rate: 0.5,
            epochs: 200,
            l2: 1e-4,
        }
    }
}

/// A trained logistic-regression model (weights live in standardized
/// feature space; standardization statistics are stored with the model).
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl LogisticRegression {
    /// Fits the model on `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or lengths mismatch.
    pub fn fit(x: &FeatureMatrix, y: &[bool], params: &LogisticRegressionParams) -> Self {
        assert!(x.n_rows() > 0, "cannot fit on an empty matrix");
        assert_eq!(x.n_rows(), y.len(), "feature/label length mismatch");
        let n = x.n_rows();
        let d = x.n_cols();
        let means = x.column_means();
        let stds = x.column_stds();

        let mut weights = vec![0.0; d];
        let mut bias = 0.0;
        let mut grad = vec![0.0; d];
        let mut z = vec![0.0; d];
        for _ in 0..params.epochs {
            grad.iter_mut().for_each(|g| *g = 0.0);
            let mut grad_bias = 0.0;
            #[allow(clippy::needless_range_loop)] // r indexes both x.row and y
            for r in 0..n {
                standardize(x.row(r), &means, &stds, &mut z);
                let p = sigmoid(dot(&weights, &z) + bias);
                let err = p - if y[r] { 1.0 } else { 0.0 };
                for (g, &zi) in grad.iter_mut().zip(z.iter()) {
                    *g += err * zi;
                }
                grad_bias += err;
            }
            let scale = params.learning_rate / n as f64;
            for (w, g) in weights.iter_mut().zip(grad.iter()) {
                *w -= scale * (*g + params.l2 * *w * n as f64);
            }
            bias -= scale * grad_bias;
        }
        LogisticRegression {
            weights,
            bias,
            means,
            stds,
        }
    }

    /// The learned weights (standardized feature space).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl Classifier for LogisticRegression {
    fn predict_proba(&self, row: &[f64]) -> f64 {
        let mut z = vec![0.0; row.len()];
        standardize(row, &self.means, &self.stds, &mut z);
        sigmoid(dot(&self.weights, &z) + self.bias)
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn standardize(row: &[f64], means: &[f64], stds: &[f64], out: &mut [f64]) {
    for i in 0..row.len() {
        out[i] = (row[i] - means[i]) / stds[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_linear_boundary() {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
        let y: Vec<bool> = (0..40).map(|i| i >= 20).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let model = LogisticRegression::fit(&x, &y, &LogisticRegressionParams::default());
        let pred = model.predict_batch(&x);
        let correct = pred.iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(correct >= 38, "accuracy {correct}/40");
    }

    #[test]
    fn probabilities_monotone_along_the_learned_direction() {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let y: Vec<bool> = (0..40).map(|i| i >= 20).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let model = LogisticRegression::fit(&x, &y, &LogisticRegressionParams::default());
        assert!(model.predict_proba(&[0.0]) < model.predict_proba(&[39.0]));
        assert!(model.predict_proba(&[0.0]) < 0.5);
        assert!(model.predict_proba(&[39.0]) > 0.5);
    }

    #[test]
    fn sigmoid_is_bounded_and_centered() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(100.0) <= 1.0);
        assert!(sigmoid(-100.0) >= 0.0);
    }

    #[test]
    fn l2_shrinks_weights() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<bool> = (0..20).map(|i| i >= 10).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let loose = LogisticRegression::fit(
            &x,
            &y,
            &LogisticRegressionParams {
                l2: 0.0,
                ..Default::default()
            },
        );
        let tight = LogisticRegression::fit(
            &x,
            &y,
            &LogisticRegressionParams {
                l2: 1.0,
                ..Default::default()
            },
        );
        assert!(tight.weights()[0].abs() < loose.weights()[0].abs());
    }
}
