//! K-fold cross-validation utilities.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::matrix::FeatureMatrix;
use crate::metrics::ConfusionMatrix;
use crate::Classifier;

/// The row partition of a k-fold split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KFold {
    folds: Vec<Vec<usize>>,
}

impl KFold {
    /// Shuffles `0..n` into `k` near-equal folds.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= k <= n`.
    pub fn new(n: usize, k: usize, seed: u64) -> Self {
        assert!(k >= 2, "need at least two folds");
        assert!(k <= n, "more folds than rows");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut indices: Vec<usize> = (0..n).collect();
        indices.shuffle(&mut rng);
        let mut folds: Vec<Vec<usize>> = vec![Vec::with_capacity(n / k + 1); k];
        for (i, idx) in indices.into_iter().enumerate() {
            folds[i % k].push(idx);
        }
        for fold in &mut folds {
            fold.sort_unstable();
        }
        KFold { folds }
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.folds.len()
    }

    /// The `(train, test)` index pair for fold `i`.
    pub fn split(&self, i: usize) -> (Vec<usize>, Vec<usize>) {
        let test = self.folds[i].clone();
        let mut train = Vec::new();
        for (j, fold) in self.folds.iter().enumerate() {
            if j != i {
                train.extend_from_slice(fold);
            }
        }
        train.sort_unstable();
        (train, test)
    }
}

/// Per-fold evaluation of a learner under k-fold cross-validation.
///
/// `fit` receives the training `(x, y)` of each fold and returns a trained
/// classifier; the returned confusion matrices are measured on the held-out
/// folds, in fold order.
pub fn cross_validate<C: Classifier>(
    x: &FeatureMatrix,
    y: &[bool],
    k: usize,
    seed: u64,
    mut fit: impl FnMut(&FeatureMatrix, &[bool]) -> C,
) -> Vec<ConfusionMatrix> {
    assert_eq!(x.n_rows(), y.len(), "feature/label length mismatch");
    let kfold = KFold::new(x.n_rows(), k, seed);
    (0..k)
        .map(|i| {
            let (train, test) = kfold.split(i);
            let x_train = x.select_rows(&train);
            let y_train: Vec<bool> = train.iter().map(|&r| y[r]).collect();
            let model = fit(&x_train, &y_train);
            let x_test = x.select_rows(&test);
            let y_test: Vec<bool> = test.iter().map(|&r| y[r]).collect();
            ConfusionMatrix::from_labels(&y_test, &model.predict_batch(&x_test))
        })
        .collect()
}

/// Mean accuracy across folds (convenience over [`cross_validate`]).
pub fn cv_accuracy<C: Classifier>(
    x: &FeatureMatrix,
    y: &[bool],
    k: usize,
    seed: u64,
    fit: impl FnMut(&FeatureMatrix, &[bool]) -> C,
) -> f64 {
    let folds = cross_validate(x, y, k, seed, fit);
    folds.iter().map(|cm| cm.accuracy()).sum::<f64>() / folds.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{DecisionTree, DecisionTreeParams};

    #[test]
    fn folds_partition_the_rows() {
        let kf = KFold::new(23, 5, 1);
        let mut all: Vec<usize> = kf.folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..23).collect::<Vec<_>>());
        // Sizes differ by at most one.
        let sizes: Vec<usize> = kf.folds.iter().map(Vec::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn split_keeps_train_and_test_disjoint() {
        let kf = KFold::new(20, 4, 2);
        for i in 0..4 {
            let (train, test) = kf.split(i);
            assert_eq!(train.len() + test.len(), 20);
            for t in &test {
                assert!(!train.contains(t));
            }
        }
    }

    #[test]
    fn cross_validation_scores_a_learnable_problem_highly() {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64]).collect();
        let y: Vec<bool> = (0..60).map(|i| i >= 30).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let acc = cv_accuracy(&x, &y, 5, 3, |xt, yt| {
            DecisionTree::fit(xt, yt, &DecisionTreeParams::default(), 0)
        });
        assert!(acc > 0.9, "cv accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "at least two folds")]
    fn one_fold_panics() {
        let _ = KFold::new(10, 1, 0);
    }

    #[test]
    #[should_panic(expected = "more folds than rows")]
    fn too_many_folds_panics() {
        let _ = KFold::new(3, 5, 0);
    }
}
