//! Random forest: bagged CART trees with per-split feature subsampling
//! (Breiman, 2001). The paper's tabular experiments use "a random forest
//! classifier with default parameters" as the black box.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::matrix::FeatureMatrix;
use crate::tree::{DecisionTree, DecisionTreeParams};
use crate::Classifier;

/// Hyper-parameters of [`RandomForest::fit`].
#[derive(Debug, Clone)]
pub struct RandomForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree depth cap (`None` = unbounded, the sklearn default).
    pub max_depth: Option<usize>,
    /// Minimum samples to split a node.
    pub min_samples_split: usize,
    /// Features considered per split (`None` = `⌈√n_features⌉`, the
    /// conventional default).
    pub max_features: Option<usize>,
    /// Draw a bootstrap sample per tree (with replacement).
    pub bootstrap: bool,
}

impl Default for RandomForestParams {
    fn default() -> Self {
        RandomForestParams {
            n_trees: 100,
            max_depth: None,
            min_samples_split: 2,
            max_features: None,
            bootstrap: true,
        }
    }
}

impl RandomForestParams {
    /// A smaller forest for fast experiments: 20 trees, depth ≤ 12.
    /// Accuracy on the synthetic datasets is indistinguishable from the
    /// full default forest, at a fraction of the training cost.
    pub fn fast() -> Self {
        RandomForestParams {
            n_trees: 20,
            max_depth: Some(12),
            ..Default::default()
        }
    }
}

/// A trained random forest (probability = mean of leaf probabilities).
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Fits `params.n_trees` trees on bootstrap samples of `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty, lengths mismatch, or `n_trees == 0`.
    pub fn fit(x: &FeatureMatrix, y: &[bool], params: &RandomForestParams, seed: u64) -> Self {
        assert!(params.n_trees > 0, "need at least one tree");
        assert!(x.n_rows() > 0, "cannot fit on an empty matrix");
        assert_eq!(x.n_rows(), y.len(), "feature/label length mismatch");
        let mut rng = StdRng::seed_from_u64(seed);
        let max_features = params
            .max_features
            .unwrap_or_else(|| (x.n_cols() as f64).sqrt().ceil() as usize)
            .clamp(1, x.n_cols());
        let tree_params = DecisionTreeParams {
            max_depth: params.max_depth,
            min_samples_split: params.min_samples_split,
            min_samples_leaf: 1,
            max_features: Some(max_features),
        };
        let n = x.n_rows();
        let mut trees = Vec::with_capacity(params.n_trees);
        for _ in 0..params.n_trees {
            let rows: Vec<usize> = if params.bootstrap {
                (0..n).map(|_| rng.gen_range(0..n)).collect()
            } else {
                (0..n).collect()
            };
            let tree_seed: u64 = rng.gen();
            trees.push(DecisionTree::fit_on_rows(
                x,
                y,
                &rows,
                &tree_params,
                tree_seed,
            ));
        }
        RandomForest { trees }
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for RandomForest {
    fn predict_proba(&self, row: &[f64]) -> f64 {
        let total: f64 = self.trees.iter().map(|t| t.predict_proba(row)).sum();
        total / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_linear(n: usize, seed: u64) -> (FeatureMatrix, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a: f64 = rng.gen();
            let b: f64 = rng.gen();
            rows.push(vec![a, b]);
            y.push(a + b + rng.gen_range(-0.1..0.1) > 1.0);
        }
        (FeatureMatrix::from_rows(&rows), y)
    }

    #[test]
    fn beats_chance_on_noisy_data() {
        let (x, y) = noisy_linear(400, 1);
        let forest = RandomForest::fit(&x, &y, &RandomForestParams::fast(), 7);
        let pred = forest.predict_batch(&x);
        let correct = pred.iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(
            correct as f64 / y.len() as f64 > 0.9,
            "train accuracy {correct}/400"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = noisy_linear(100, 2);
        let params = RandomForestParams {
            n_trees: 5,
            ..RandomForestParams::fast()
        };
        let f1 = RandomForest::fit(&x, &y, &params, 11);
        let f2 = RandomForest::fit(&x, &y, &params, 11);
        assert_eq!(f1.predict_proba_batch(&x), f2.predict_proba_batch(&x));
    }

    #[test]
    fn different_seeds_differ() {
        let (x, y) = noisy_linear(100, 2);
        let params = RandomForestParams {
            n_trees: 5,
            ..RandomForestParams::fast()
        };
        let f1 = RandomForest::fit(&x, &y, &params, 1);
        let f2 = RandomForest::fit(&x, &y, &params, 2);
        assert_ne!(f1.predict_proba_batch(&x), f2.predict_proba_batch(&x));
    }

    #[test]
    fn probabilities_are_in_unit_interval() {
        let (x, y) = noisy_linear(100, 3);
        let forest = RandomForest::fit(&x, &y, &RandomForestParams::fast(), 0);
        for p in forest.predict_proba_batch(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn no_bootstrap_uses_all_rows() {
        let (x, y) = noisy_linear(50, 4);
        let params = RandomForestParams {
            n_trees: 3,
            bootstrap: false,
            max_features: Some(2),
            ..Default::default()
        };
        // With all rows and all features, every tree is identical.
        let forest = RandomForest::fit(&x, &y, &params, 0);
        let p = forest.predict_proba_batch(&x);
        let t0 = &forest.trees[0];
        for (r, &pr) in p.iter().enumerate() {
            assert!((pr - t0.predict_proba(x.row(r))).abs() < 1e-12);
        }
    }
}
