//! A multi-layer perceptron (one ReLU hidden layer, sigmoid output,
//! mini-batch SGD with momentum). The paper's §6.6 user study trains an MLP
//! on a bias-injected training set.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

use crate::matrix::FeatureMatrix;
use crate::Classifier;

/// Hyper-parameters of [`Mlp::fit`].
#[derive(Debug, Clone)]
pub struct MlpParams {
    /// Hidden layer width.
    pub hidden: usize,
    /// SGD step size.
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Training epochs.
    pub epochs: usize,
}

impl Default for MlpParams {
    fn default() -> Self {
        MlpParams {
            hidden: 16,
            learning_rate: 0.05,
            momentum: 0.9,
            batch_size: 32,
            epochs: 60,
        }
    }
}

/// A trained MLP. Features are standardized internally.
#[derive(Debug, Clone)]
pub struct Mlp {
    // Layer 1: hidden × d weights + hidden biases.
    w1: Vec<f64>,
    b1: Vec<f64>,
    // Layer 2: hidden weights + 1 bias.
    w2: Vec<f64>,
    b2: f64,
    hidden: usize,
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Mlp {
    /// Trains the network on `(x, y)` with the given seed (weight
    /// initialization and batch shuffling).
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty, lengths mismatch, or `hidden == 0`.
    pub fn fit(x: &FeatureMatrix, y: &[bool], params: &MlpParams, seed: u64) -> Self {
        assert!(x.n_rows() > 0, "cannot fit on an empty matrix");
        assert_eq!(x.n_rows(), y.len(), "feature/label length mismatch");
        assert!(params.hidden > 0, "hidden width must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let d = x.n_cols();
        let h = params.hidden;
        let means = x.column_means();
        let stds = x.column_stds();

        // He initialization for the ReLU layer.
        let scale1 = (2.0 / d as f64).sqrt();
        let mut w1: Vec<f64> = (0..h * d).map(|_| rng.gen_range(-scale1..scale1)).collect();
        let mut b1 = vec![0.0; h];
        let scale2 = (2.0 / h as f64).sqrt();
        let mut w2: Vec<f64> = (0..h).map(|_| rng.gen_range(-scale2..scale2)).collect();
        let mut b2 = 0.0;

        let mut vel_w1 = vec![0.0; h * d];
        let mut vel_b1 = vec![0.0; h];
        let mut vel_w2 = vec![0.0; h];
        let mut vel_b2 = 0.0;

        let n = x.n_rows();
        let mut order: Vec<usize> = (0..n).collect();
        let mut z = vec![0.0; d];
        let mut act = vec![0.0; h];
        let mut g_w1 = vec![0.0; h * d];
        let mut g_b1 = vec![0.0; h];
        let mut g_w2 = vec![0.0; h];

        for _ in 0..params.epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(params.batch_size.max(1)) {
                g_w1.iter_mut().for_each(|g| *g = 0.0);
                g_b1.iter_mut().for_each(|g| *g = 0.0);
                g_w2.iter_mut().for_each(|g| *g = 0.0);
                let mut g_b2 = 0.0;
                for &r in batch {
                    standardize(x.row(r), &means, &stds, &mut z);
                    // Forward.
                    for j in 0..h {
                        let s: f64 = dot(&w1[j * d..(j + 1) * d], &z) + b1[j];
                        act[j] = s.max(0.0);
                    }
                    let out = sigmoid(dot(&w2, &act) + b2);
                    // Backward (cross-entropy + sigmoid -> simple delta).
                    let delta = out - if y[r] { 1.0 } else { 0.0 };
                    for j in 0..h {
                        g_w2[j] += delta * act[j];
                        if act[j] > 0.0 {
                            let dj = delta * w2[j];
                            for (g, &zi) in g_w1[j * d..(j + 1) * d].iter_mut().zip(z.iter()) {
                                *g += dj * zi;
                            }
                            g_b1[j] += dj;
                        }
                    }
                    g_b2 += delta;
                }
                let lr = params.learning_rate / batch.len() as f64;
                let m = params.momentum;
                for (i, g) in g_w1.iter().enumerate() {
                    vel_w1[i] = m * vel_w1[i] - lr * g;
                    w1[i] += vel_w1[i];
                }
                for (i, g) in g_b1.iter().enumerate() {
                    vel_b1[i] = m * vel_b1[i] - lr * g;
                    b1[i] += vel_b1[i];
                }
                for (i, g) in g_w2.iter().enumerate() {
                    vel_w2[i] = m * vel_w2[i] - lr * g;
                    w2[i] += vel_w2[i];
                }
                vel_b2 = m * vel_b2 - lr * g_b2;
                b2 += vel_b2;
            }
        }
        Mlp {
            w1,
            b1,
            w2,
            b2,
            hidden: h,
            means,
            stds,
        }
    }
}

impl Classifier for Mlp {
    fn predict_proba(&self, row: &[f64]) -> f64 {
        let d = row.len();
        let mut z = vec![0.0; d];
        standardize(row, &self.means, &self.stds, &mut z);
        let mut act = 0.0;
        let mut total = self.b2;
        for j in 0..self.hidden {
            act = (dot(&self.w1[j * d..(j + 1) * d], &z) + self.b1[j]).max(0.0);
            total += self.w2[j] * act;
        }
        let _ = act;
        sigmoid(total)
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn standardize(row: &[f64], means: &[f64], stds: &[f64], out: &mut [f64]) {
    for i in 0..row.len() {
        out[i] = (row[i] - means[i]) / stds[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_xor() {
        let x = FeatureMatrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ]);
        let y = vec![false, true, true, false];
        // XOR needs the hidden layer; replicate rows so batches help.
        let mut xr = FeatureMatrix::new(2);
        let mut yr = Vec::new();
        for _ in 0..32 {
            #[allow(clippy::needless_range_loop)] // r indexes both x.row and y
            for r in 0..4 {
                xr.push_row(x.row(r));
                yr.push(y[r]);
            }
        }
        let params = MlpParams {
            hidden: 8,
            epochs: 200,
            ..Default::default()
        };
        let mlp = Mlp::fit(&xr, &yr, &params, 3);
        assert_eq!(mlp.predict_batch(&x), y);
    }

    #[test]
    fn deterministic_given_seed() {
        let x = FeatureMatrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let y = vec![false, false, true, true];
        let p = MlpParams {
            epochs: 10,
            ..Default::default()
        };
        let a = Mlp::fit(&x, &y, &p, 5);
        let b = Mlp::fit(&x, &y, &p, 5);
        assert_eq!(a.predict_proba_batch(&x), b.predict_proba_batch(&x));
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let x = FeatureMatrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let y = vec![false, false, true, true];
        let mlp = Mlp::fit(&x, &y, &MlpParams::default(), 1);
        for p in mlp.predict_proba_batch(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn learns_a_simple_threshold() {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<bool> = (0..64).map(|i| i >= 32).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let mlp = Mlp::fit(&x, &y, &MlpParams::default(), 2);
        let pred = mlp.predict_batch(&x);
        let correct = pred.iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(correct >= 60, "accuracy {correct}/64");
    }
}
