//! A CART decision tree for binary classification (gini impurity, axis-
//! aligned threshold splits).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::matrix::FeatureMatrix;
use crate::Classifier;

/// Hyper-parameters of [`DecisionTree::fit`].
#[derive(Debug, Clone)]
pub struct DecisionTreeParams {
    /// Maximum tree depth (`None` = grow until pure/exhausted).
    pub max_depth: Option<usize>,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each child of a split.
    pub min_samples_leaf: usize,
    /// Number of features considered per split (`None` = all). Random
    /// forests pass `⌈√n_features⌉` here.
    pub max_features: Option<usize>,
}

impl Default for DecisionTreeParams {
    fn default() -> Self {
        DecisionTreeParams {
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Fraction of positive training samples at the leaf.
        proba: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Index of the `< threshold` child.
        left: u32,
        /// Index of the `>= threshold` child.
        right: u32,
    },
}

/// A trained CART decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_features: usize,
}

impl DecisionTree {
    /// Fits a tree on `(x, y)`. `seed` controls feature subsampling (only
    /// relevant when `max_features` is set).
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or `y.len() != x.n_rows()`.
    pub fn fit(x: &FeatureMatrix, y: &[bool], params: &DecisionTreeParams, seed: u64) -> Self {
        assert!(x.n_rows() > 0, "cannot fit on an empty matrix");
        assert_eq!(x.n_rows(), y.len(), "feature/label length mismatch");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            n_features: x.n_cols(),
        };
        let indices: Vec<usize> = (0..x.n_rows()).collect();
        tree.grow(x, y, indices, params, 0, &mut rng);
        tree
    }

    /// Fits a tree on a bootstrap/selected subset of rows.
    pub fn fit_on_rows(
        x: &FeatureMatrix,
        y: &[bool],
        rows: &[usize],
        params: &DecisionTreeParams,
        seed: u64,
    ) -> Self {
        assert!(!rows.is_empty(), "cannot fit on zero rows");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            n_features: x.n_cols(),
        };
        tree.grow(x, y, rows.to_vec(), params, 0, &mut rng);
        tree
    }

    /// Number of nodes in the tree.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Grows the subtree for `indices`, returning its root node index.
    fn grow(
        &mut self,
        x: &FeatureMatrix,
        y: &[bool],
        indices: Vec<usize>,
        params: &DecisionTreeParams,
        depth: usize,
        rng: &mut StdRng,
    ) -> u32 {
        let n = indices.len();
        let n_pos = indices.iter().filter(|&&i| y[i]).count();
        let proba = n_pos as f64 / n as f64;

        let stop = n < params.min_samples_split
            || n_pos == 0
            || n_pos == n
            || params.max_depth.is_some_and(|d| depth >= d);
        if !stop {
            if let Some((feature, threshold)) = self.best_split(x, y, &indices, params, rng) {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|&&i| x.get(i, feature) < threshold);
                if left_idx.len() >= params.min_samples_leaf
                    && right_idx.len() >= params.min_samples_leaf
                {
                    let node = self.nodes.len() as u32;
                    self.nodes.push(Node::Split {
                        feature,
                        threshold,
                        left: 0,
                        right: 0,
                    });
                    let left = self.grow(x, y, left_idx, params, depth + 1, rng);
                    let right = self.grow(x, y, right_idx, params, depth + 1, rng);
                    if let Node::Split {
                        left: l, right: r, ..
                    } = &mut self.nodes[node as usize]
                    {
                        *l = left;
                        *r = right;
                    }
                    return node;
                }
            }
        }
        let node = self.nodes.len() as u32;
        self.nodes.push(Node::Leaf { proba });
        node
    }

    /// The gini-optimal `(feature, threshold)` over a (possibly subsampled)
    /// feature set, or `None` if no split reduces impurity.
    fn best_split(
        &self,
        x: &FeatureMatrix,
        y: &[bool],
        indices: &[usize],
        params: &DecisionTreeParams,
        rng: &mut StdRng,
    ) -> Option<(usize, f64)> {
        let mut features: Vec<usize> = (0..x.n_cols()).collect();
        if let Some(k) = params.max_features {
            features.shuffle(rng);
            features.truncate(k.clamp(1, x.n_cols()));
        }

        let n = indices.len() as f64;
        let n_pos_total = indices.iter().filter(|&&i| y[i]).count() as f64;
        let parent_gini = gini(n_pos_total, n);

        // Like sklearn's default CART, accept the best split even at zero
        // impurity decrease (necessary for XOR-like targets where the first
        // split alone has no gain); recursion still terminates because every
        // split strictly shrinks both children.
        let mut best: Option<(usize, f64)> = None;
        let mut best_gain = f64::NEG_INFINITY;
        let mut sorted: Vec<(f64, bool)> = Vec::with_capacity(indices.len());
        for &feature in &features {
            sorted.clear();
            sorted.extend(indices.iter().map(|&i| (x.get(i, feature), y[i])));
            sorted.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

            // Scan split positions between distinct consecutive values.
            let mut pos_left = 0.0;
            for k in 1..sorted.len() {
                if sorted[k - 1].1 {
                    pos_left += 1.0;
                }
                if sorted[k].0 == sorted[k - 1].0 {
                    continue;
                }
                let n_left = k as f64;
                let n_right = n - n_left;
                let gini_left = gini(pos_left, n_left);
                let gini_right = gini(n_pos_total - pos_left, n_right);
                let weighted = (n_left * gini_left + n_right * gini_right) / n;
                let gain = parent_gini - weighted;
                if gain > best_gain {
                    best_gain = gain;
                    best = Some((feature, (sorted[k - 1].0 + sorted[k].0) / 2.0));
                }
            }
        }
        best
    }
}

/// Gini impurity of a node with `pos` positives out of `n` samples.
fn gini(pos: f64, n: f64) -> f64 {
    if n == 0.0 {
        return 0.0;
    }
    let p = pos / n;
    2.0 * p * (1.0 - p)
}

impl Classifier for DecisionTree {
    fn predict_proba(&self, row: &[f64]) -> f64 {
        debug_assert_eq!(row.len(), self.n_features);
        let mut node = 0u32;
        loop {
            match &self.nodes[node as usize] {
                Node::Leaf { proba } => return *proba,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> (FeatureMatrix, Vec<bool>) {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, (i % 3) as f64]).collect();
        let y: Vec<bool> = (0..20).map(|i| i >= 10).collect();
        (FeatureMatrix::from_rows(&rows), y)
    }

    #[test]
    fn fits_a_separable_problem_exactly() {
        let (x, y) = separable();
        let tree = DecisionTree::fit(&x, &y, &DecisionTreeParams::default(), 0);
        assert_eq!(tree.predict_batch(&x), y);
        // A single split suffices: 1 split node + 2 leaves.
        assert_eq!(tree.n_nodes(), 3);
    }

    #[test]
    fn learns_xor_with_depth_two() {
        let x = FeatureMatrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ]);
        let y = vec![false, true, true, false];
        let tree = DecisionTree::fit(&x, &y, &DecisionTreeParams::default(), 0);
        assert_eq!(tree.predict_batch(&x), y);
    }

    #[test]
    fn max_depth_limits_growth() {
        let (x, y) = separable();
        let params = DecisionTreeParams {
            max_depth: Some(0),
            ..Default::default()
        };
        let tree = DecisionTree::fit(&x, &y, &params, 0);
        assert_eq!(tree.n_nodes(), 1);
        // Root leaf probability = positive fraction.
        assert!((tree.predict_proba(&[0.0, 0.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let (x, y) = separable();
        let params = DecisionTreeParams {
            min_samples_leaf: 8,
            ..Default::default()
        };
        let tree = DecisionTree::fit(&x, &y, &params, 0);
        // Splits still possible (10/10), but not arbitrarily deep.
        assert!(tree.n_nodes() <= 7);
    }

    #[test]
    fn pure_node_does_not_split() {
        let x = FeatureMatrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let y = vec![true, true, true];
        let tree = DecisionTree::fit(&x, &y, &DecisionTreeParams::default(), 0);
        assert_eq!(tree.n_nodes(), 1);
        assert_eq!(tree.predict_proba(&[9.0]), 1.0);
    }

    #[test]
    fn constant_features_yield_single_leaf() {
        let x = FeatureMatrix::from_rows(&[vec![5.0], vec![5.0], vec![5.0], vec![5.0]]);
        let y = vec![true, false, true, false];
        let tree = DecisionTree::fit(&x, &y, &DecisionTreeParams::default(), 0);
        assert_eq!(tree.n_nodes(), 1);
    }

    #[test]
    fn fit_on_rows_restricts_training_data() {
        let (x, y) = separable();
        // Train only on the positive half: everything predicts positive.
        let rows: Vec<usize> = (10..20).collect();
        let tree = DecisionTree::fit_on_rows(&x, &y, &rows, &DecisionTreeParams::default(), 0);
        assert!(tree.predict_row(&[0.0, 0.0]));
    }

    #[test]
    fn gini_is_maximal_at_balanced() {
        assert_eq!(gini(0.0, 10.0), 0.0);
        assert_eq!(gini(10.0, 10.0), 0.0);
        assert!((gini(5.0, 10.0) - 0.5).abs() < 1e-12);
    }
}
