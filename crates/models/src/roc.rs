//! ROC analysis: the full curve, AUC, and threshold selection — the
//! standard view of a probabilistic classifier's operating range, and the
//! natural companion to divergence analysis when choosing the decision
//! threshold whose subgroup behavior will then be audited.

/// One point of the ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Decision threshold producing this point.
    pub threshold: f64,
    /// False-positive rate at the threshold.
    pub fpr: f64,
    /// True-positive rate at the threshold.
    pub tpr: f64,
}

/// The ROC curve of a set of probabilistic predictions.
#[derive(Debug, Clone, PartialEq)]
pub struct RocCurve {
    /// Points in order of decreasing threshold, from `(0,0)` to `(1,1)`.
    pub points: Vec<RocPoint>,
}

impl RocCurve {
    /// Computes the curve.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch, empty input, or a class being absent.
    pub fn new(proba: &[f64], y: &[bool]) -> Self {
        assert_eq!(proba.len(), y.len(), "probability/label length mismatch");
        assert!(!proba.is_empty(), "need at least one prediction");
        let n_pos = y.iter().filter(|&&t| t).count();
        let n_neg = y.len() - n_pos;
        assert!(n_pos > 0 && n_neg > 0, "both classes must be present");

        let mut order: Vec<usize> = (0..proba.len()).collect();
        order.sort_by(|&a, &b| proba[b].partial_cmp(&proba[a]).unwrap());

        let mut points = vec![RocPoint {
            threshold: f64::INFINITY,
            fpr: 0.0,
            tpr: 0.0,
        }];
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut i = 0;
        while i < order.len() {
            // Consume all ties at this score together.
            let score = proba[order[i]];
            while i < order.len() && proba[order[i]] == score {
                if y[order[i]] {
                    tp += 1;
                } else {
                    fp += 1;
                }
                i += 1;
            }
            points.push(RocPoint {
                threshold: score,
                fpr: fp as f64 / n_neg as f64,
                tpr: tp as f64 / n_pos as f64,
            });
        }
        RocCurve { points }
    }

    /// Area under the curve by the trapezoid rule.
    pub fn auc(&self) -> f64 {
        let mut auc = 0.0;
        for w in self.points.windows(2) {
            auc += (w[1].fpr - w[0].fpr) * (w[0].tpr + w[1].tpr) / 2.0;
        }
        auc
    }

    /// The threshold maximizing Youden's J (`tpr − fpr`).
    pub fn best_threshold(&self) -> f64 {
        self.points
            .iter()
            .skip(1) // the sentinel has no usable threshold
            .max_by(|a, b| (a.tpr - a.fpr).partial_cmp(&(b.tpr - b.fpr)).unwrap())
            .map(|p| p.threshold)
            .unwrap_or(0.5)
    }
}

/// Convenience: the AUC of raw scores (no materialized curve).
pub fn auc(proba: &[f64], y: &[bool]) -> f64 {
    RocCurve::new(proba, y).auc()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_has_auc_one() {
        let proba = [0.9, 0.8, 0.2, 0.1];
        let y = [true, true, false, false];
        assert!((auc(&proba, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_scores_have_auc_zero() {
        let proba = [0.1, 0.2, 0.8, 0.9];
        let y = [true, true, false, false];
        assert!(auc(&proba, &y).abs() < 1e-12);
    }

    #[test]
    fn random_scores_have_auc_half() {
        // Constant score: single tie block, AUC = 0.5 by the trapezoid rule.
        let proba = [0.5; 10];
        let y: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        assert!((auc(&proba, &y) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn curve_is_monotone_and_spans_the_unit_square() {
        let proba = [0.9, 0.7, 0.7, 0.4, 0.3, 0.2];
        let y = [true, false, true, true, false, false];
        let curve = RocCurve::new(&proba, &y);
        assert_eq!(curve.points.first().unwrap().tpr, 0.0);
        assert_eq!(curve.points.last().unwrap().tpr, 1.0);
        assert_eq!(curve.points.last().unwrap().fpr, 1.0);
        assert!(curve
            .points
            .windows(2)
            .all(|w| w[1].fpr >= w[0].fpr && w[1].tpr >= w[0].tpr));
    }

    #[test]
    fn auc_equals_pairwise_ranking_probability() {
        // AUC = P(score(pos) > score(neg)) + 0.5 P(tie), checked by brute
        // force.
        let proba = [0.9, 0.5, 0.5, 0.3, 0.8, 0.1];
        let y = [true, true, false, false, false, true];
        let mut wins = 0.0;
        let mut total = 0.0;
        for i in 0..6 {
            for j in 0..6 {
                if y[i] && !y[j] {
                    total += 1.0;
                    if proba[i] > proba[j] {
                        wins += 1.0;
                    } else if proba[i] == proba[j] {
                        wins += 0.5;
                    }
                }
            }
        }
        assert!((auc(&proba, &y) - wins / total).abs() < 1e-12);
    }

    #[test]
    fn best_threshold_separates_the_classes() {
        let proba = [0.9, 0.8, 0.2, 0.1];
        let y = [true, true, false, false];
        let t = RocCurve::new(&proba, &y).best_threshold();
        // Any threshold in [0.8, 0.9] achieves J = 1; ours is one of the
        // observed scores.
        assert!((0.2..=0.9).contains(&t));
        let pred: Vec<bool> = proba.iter().map(|&p| p >= t).collect();
        assert_eq!(pred, y);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_panics() {
        let _ = auc(&[0.5, 0.6], &[true, true]);
    }
}
