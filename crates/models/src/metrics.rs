//! Classifier evaluation metrics: the confusion matrix and the rates
//! derived from it.

/// A binary confusion matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// True positives: `v ∧ u`.
    pub tp: u64,
    /// True negatives: `¬v ∧ ¬u`.
    pub tn: u64,
    /// False positives: `¬v ∧ u`.
    pub fp: u64,
    /// False negatives: `v ∧ ¬u`.
    pub fn_: u64,
}

impl ConfusionMatrix {
    /// Tallies predictions `u` against ground truth `v`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_labels(v: &[bool], u: &[bool]) -> Self {
        assert_eq!(v.len(), u.len(), "label length mismatch");
        let mut m = ConfusionMatrix::default();
        for (&vi, &ui) in v.iter().zip(u) {
            match (vi, ui) {
                (true, true) => m.tp += 1,
                (false, false) => m.tn += 1,
                (false, true) => m.fp += 1,
                (true, false) => m.fn_ += 1,
            }
        }
        m
    }

    /// Total instances.
    pub fn total(&self) -> u64 {
        self.tp + self.tn + self.fp + self.fn_
    }

    /// `(TP + TN) / N`.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// `(FP + FN) / N`.
    pub fn error_rate(&self) -> f64 {
        ratio(self.fp + self.fn_, self.total())
    }

    /// `FP / (FP + TN)` — NaN when there are no true negatives.
    pub fn false_positive_rate(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }

    /// `FN / (FN + TP)` — NaN when there are no true positives.
    pub fn false_negative_rate(&self) -> f64 {
        ratio(self.fn_, self.fn_ + self.tp)
    }

    /// `TP / (TP + FN)` — recall.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// `TP / (TP + FP)` — precision.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Harmonic mean of precision and recall; `0` when either is undefined
    /// or both are zero (no true positives).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p.is_nan() || r.is_nan() || p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        f64::NAN
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_match_hand_count() {
        let v = [true, true, false, false, true];
        let u = [true, false, true, false, true];
        let m = ConfusionMatrix::from_labels(&v, &u);
        assert_eq!(
            m,
            ConfusionMatrix {
                tp: 2,
                tn: 1,
                fp: 1,
                fn_: 1
            }
        );
        assert!((m.accuracy() - 0.6).abs() < 1e-12);
        assert!((m.error_rate() - 0.4).abs() < 1e-12);
        assert!((m.false_positive_rate() - 0.5).abs() < 1e-12);
        assert!((m.false_negative_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rates_are_nan_when_undefined() {
        let m = ConfusionMatrix::from_labels(&[true, true], &[true, false]);
        assert!(m.false_positive_rate().is_nan());
        assert!(!m.false_negative_rate().is_nan());
    }

    #[test]
    fn f1_handles_degenerate_case() {
        let m = ConfusionMatrix::from_labels(&[true], &[false]);
        assert_eq!(m.f1(), 0.0);
    }

    #[test]
    fn accuracy_plus_error_is_one() {
        let v = [true, false, true, false];
        let u = [false, false, true, true];
        let m = ConfusionMatrix::from_labels(&v, &u);
        assert!((m.accuracy() + m.error_rate() - 1.0).abs() < 1e-12);
    }
}
