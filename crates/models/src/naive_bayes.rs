//! Gaussian naive Bayes for binary classification: cheap, calibrated-ish
//! probabilities, a useful contrast to the tree ensembles in model-
//! comparison studies.

use crate::matrix::FeatureMatrix;
use crate::Classifier;

/// A trained Gaussian naive Bayes model: per-class feature means/variances
/// plus the class prior.
#[derive(Debug, Clone)]
pub struct GaussianNaiveBayes {
    prior_pos: f64,
    mean_pos: Vec<f64>,
    var_pos: Vec<f64>,
    mean_neg: Vec<f64>,
    var_neg: Vec<f64>,
}

/// Variance floor guarding against zero-variance features.
const VAR_FLOOR: f64 = 1e-9;

impl GaussianNaiveBayes {
    /// Fits the model.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty, lengths mismatch, or one class is absent
    /// (a single-class problem has nothing to classify).
    pub fn fit(x: &FeatureMatrix, y: &[bool]) -> Self {
        assert!(x.n_rows() > 0, "cannot fit on an empty matrix");
        assert_eq!(x.n_rows(), y.len(), "feature/label length mismatch");
        let n_pos = y.iter().filter(|&&l| l).count();
        let n_neg = y.len() - n_pos;
        assert!(n_pos > 0 && n_neg > 0, "both classes must be present");

        let d = x.n_cols();
        let stats = |class: bool, n: usize| -> (Vec<f64>, Vec<f64>) {
            let mut mean = vec![0.0; d];
            #[allow(clippy::needless_range_loop)] // r indexes both x.row and y
            for r in 0..x.n_rows() {
                if y[r] == class {
                    for (c, &v) in x.row(r).iter().enumerate() {
                        mean[c] += v;
                    }
                }
            }
            for m in &mut mean {
                *m /= n as f64;
            }
            let mut var = vec![0.0; d];
            #[allow(clippy::needless_range_loop)] // r indexes both x.row and y
            for r in 0..x.n_rows() {
                if y[r] == class {
                    for (c, &v) in x.row(r).iter().enumerate() {
                        let dlt = v - mean[c];
                        var[c] += dlt * dlt;
                    }
                }
            }
            for v in &mut var {
                *v = (*v / n as f64).max(VAR_FLOOR);
            }
            (mean, var)
        };
        let (mean_pos, var_pos) = stats(true, n_pos);
        let (mean_neg, var_neg) = stats(false, n_neg);
        GaussianNaiveBayes {
            prior_pos: n_pos as f64 / y.len() as f64,
            mean_pos,
            var_pos,
            mean_neg,
            var_neg,
        }
    }
}

/// Log density of `N(mean, var)` at `v`, up to the shared constant.
fn log_gauss(v: f64, mean: f64, var: f64) -> f64 {
    let d = v - mean;
    -0.5 * (var.ln() + d * d / var)
}

impl Classifier for GaussianNaiveBayes {
    fn predict_proba(&self, row: &[f64]) -> f64 {
        let mut log_pos = self.prior_pos.ln();
        let mut log_neg = (1.0 - self.prior_pos).ln();
        for (c, &v) in row.iter().enumerate() {
            log_pos += log_gauss(v, self.mean_pos[c], self.var_pos[c]);
            log_neg += log_gauss(v, self.mean_neg[c], self.var_neg[c]);
        }
        // Softmax over the two log-joints.
        let m = log_pos.max(log_neg);
        let ep = (log_pos - m).exp();
        let en = (log_neg - m).exp();
        ep / (ep + en)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_shifted_gaussians() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            let jitter = (i % 10) as f64 * 0.05;
            rows.push(vec![0.0 + jitter, 1.0 - jitter]);
            y.push(false);
            rows.push(vec![3.0 + jitter, 4.0 - jitter]);
            y.push(true);
        }
        let x = FeatureMatrix::from_rows(&rows);
        let model = GaussianNaiveBayes::fit(&x, &y);
        let pred = model.predict_batch(&x);
        assert_eq!(pred, y);
        assert!(model.predict_proba(&[3.0, 4.0]) > 0.99);
        assert!(model.predict_proba(&[0.0, 1.0]) < 0.01);
    }

    #[test]
    fn prior_dominates_with_uninformative_features() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![(i % 2) as f64]).collect();
        // 8 positives, 2 negatives, feature independent of class.
        let y = vec![true, true, true, true, false, true, true, false, true, true];
        let x = FeatureMatrix::from_rows(&rows);
        let model = GaussianNaiveBayes::fit(&x, &y);
        assert!(model.predict_proba(&[0.0]) > 0.5);
        assert!(model.predict_proba(&[1.0]) > 0.5);
    }

    #[test]
    fn zero_variance_features_do_not_blow_up() {
        let x = FeatureMatrix::from_rows(&[
            vec![1.0, 5.0],
            vec![2.0, 5.0],
            vec![3.0, 5.0],
            vec![4.0, 5.0],
        ]);
        let y = vec![false, false, true, true];
        let model = GaussianNaiveBayes::fit(&x, &y);
        let p = model.predict_proba(&[3.5, 5.0]);
        assert!(p.is_finite());
        assert!(p > 0.5);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_panics() {
        let x = FeatureMatrix::from_rows(&[vec![1.0], vec![2.0]]);
        let _ = GaussianNaiveBayes::fit(&x, &[true, true]);
    }
}
