//! Probability-calibration diagnostics: Brier score, reliability bins and
//! expected calibration error (ECE). Slice Finder's loss-based search and
//! the LIME/SHAP explainers both consume predicted probabilities; these
//! utilities quantify how trustworthy those probabilities are.

/// One bin of a reliability diagram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationBin {
    /// Lower edge of the predicted-probability bin (upper = lower + width).
    pub lower: f64,
    /// Number of instances in the bin.
    pub count: usize,
    /// Mean predicted probability in the bin.
    pub mean_predicted: f64,
    /// Observed positive fraction in the bin.
    pub observed: f64,
}

/// The calibration summary of a set of probabilistic predictions.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Mean squared error of probabilities vs outcomes.
    pub brier_score: f64,
    /// Reliability bins (empty bins omitted).
    pub bins: Vec<CalibrationBin>,
    /// Expected calibration error: count-weighted mean of
    /// `|observed − mean_predicted|` over the bins.
    pub ece: f64,
}

/// Computes the Brier score, a reliability diagram with `n_bins` equal-width
/// bins, and the ECE.
///
/// # Panics
///
/// Panics if lengths mismatch, inputs are empty, `n_bins == 0`, or a
/// probability is outside `[0, 1]`.
pub fn calibration(proba: &[f64], y: &[bool], n_bins: usize) -> Calibration {
    assert_eq!(proba.len(), y.len(), "probability/label length mismatch");
    assert!(!proba.is_empty(), "need at least one prediction");
    assert!(n_bins > 0, "need at least one bin");
    assert!(
        proba.iter().all(|p| (0.0..=1.0).contains(p)),
        "probabilities must be in [0, 1]"
    );

    let brier_score = proba
        .iter()
        .zip(y)
        .map(|(&p, &t)| {
            let target = if t { 1.0 } else { 0.0 };
            (p - target) * (p - target)
        })
        .sum::<f64>()
        / proba.len() as f64;

    let width = 1.0 / n_bins as f64;
    let mut counts = vec![0usize; n_bins];
    let mut sum_pred = vec![0.0; n_bins];
    let mut sum_obs = vec![0.0; n_bins];
    for (&p, &t) in proba.iter().zip(y) {
        let bin = ((p / width) as usize).min(n_bins - 1);
        counts[bin] += 1;
        sum_pred[bin] += p;
        sum_obs[bin] += t as u8 as f64;
    }
    let mut bins = Vec::new();
    let mut ece = 0.0;
    for b in 0..n_bins {
        if counts[b] == 0 {
            continue;
        }
        let mean_predicted = sum_pred[b] / counts[b] as f64;
        let observed = sum_obs[b] / counts[b] as f64;
        ece += counts[b] as f64 / proba.len() as f64 * (observed - mean_predicted).abs();
        bins.push(CalibrationBin {
            lower: b as f64 * width,
            count: counts[b],
            mean_predicted,
            observed,
        });
    }
    Calibration {
        brier_score,
        bins,
        ece,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_have_zero_brier_and_ece() {
        let proba = [1.0, 0.0, 1.0, 0.0];
        let y = [true, false, true, false];
        let c = calibration(&proba, &y, 10);
        assert_eq!(c.brier_score, 0.0);
        assert!(c.ece < 1e-12);
    }

    #[test]
    fn constant_half_on_balanced_data_is_calibrated_but_unsharp() {
        let proba = [0.5; 100];
        let y: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let c = calibration(&proba, &y, 10);
        // Perfectly calibrated (observed == predicted in the single bin)…
        assert!(c.ece < 1e-12);
        // …but the Brier score shows no sharpness.
        assert!((c.brier_score - 0.25).abs() < 1e-12);
        assert_eq!(c.bins.len(), 1);
        assert_eq!(c.bins[0].count, 100);
    }

    #[test]
    fn overconfident_predictions_show_up_in_ece() {
        // Predicts 0.9 but only 50% positives: |0.5 − 0.9| = 0.4 ECE.
        let proba = [0.9; 40];
        let y: Vec<bool> = (0..40).map(|i| i % 2 == 0).collect();
        let c = calibration(&proba, &y, 10);
        assert!((c.ece - 0.4).abs() < 1e-9);
        assert_eq!(c.bins.len(), 1);
        assert!((c.bins[0].observed - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bin_edges_and_counts_are_consistent() {
        let proba = [0.05, 0.15, 0.95, 1.0];
        let y = [false, false, true, true];
        let c = calibration(&proba, &y, 10);
        let total: usize = c.bins.iter().map(|b| b.count).sum();
        assert_eq!(total, 4);
        // p = 1.0 falls in the last bin, not out of range.
        assert!(c
            .bins
            .iter()
            .any(|b| (b.lower - 0.9).abs() < 1e-12 && b.count == 2));
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn out_of_range_probability_panics() {
        let _ = calibration(&[1.5], &[true], 10);
    }
}
