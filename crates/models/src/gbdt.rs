//! Gradient-boosted decision trees for binary classification (logistic
//! loss, Friedman 2001). Boosting produces sharper decision boundaries than
//! bagging on tabular data, which makes its divergence profile an
//! interesting contrast to the random forest's in model-comparison studies.

use crate::matrix::FeatureMatrix;
use crate::Classifier;

/// Hyper-parameters of [`GradientBoostedTrees::fit`].
#[derive(Debug, Clone)]
pub struct GbdtParams {
    /// Number of boosting rounds (trees).
    pub n_rounds: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Depth of each regression tree.
    pub max_depth: usize,
    /// Minimum samples required in a leaf.
    pub min_samples_leaf: usize,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            n_rounds: 50,
            learning_rate: 0.2,
            max_depth: 3,
            min_samples_leaf: 5,
        }
    }
}

/// One node of a regression tree (arena layout).
#[derive(Debug, Clone)]
enum RegNode {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: u32,
        right: u32,
    },
}

/// A regression tree fit to gradients.
#[derive(Debug, Clone)]
struct RegressionTree {
    nodes: Vec<RegNode>,
}

impl RegressionTree {
    fn predict(&self, row: &[f64]) -> f64 {
        let mut node = 0u32;
        loop {
            match &self.nodes[node as usize] {
                RegNode::Leaf { value } => return *value,
                RegNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Fits a depth-bounded least-squares tree on `(x, residuals)` and
    /// converts leaf means into logistic Newton-step values.
    fn fit(x: &FeatureMatrix, gradients: &[f64], hessians: &[f64], params: &GbdtParams) -> Self {
        let mut tree = RegressionTree { nodes: Vec::new() };
        let indices: Vec<usize> = (0..x.n_rows()).collect();
        tree.grow(x, gradients, hessians, indices, params, 0);
        tree
    }

    fn grow(
        &mut self,
        x: &FeatureMatrix,
        gradients: &[f64],
        hessians: &[f64],
        indices: Vec<usize>,
        params: &GbdtParams,
        depth: usize,
    ) -> u32 {
        let g_sum: f64 = indices.iter().map(|&i| gradients[i]).sum();
        let h_sum: f64 = indices.iter().map(|&i| hessians[i]).sum();
        // Newton step: -Σg / (Σh + λ), small ridge for stability.
        let leaf_value = -g_sum / (h_sum + 1e-6);

        if depth >= params.max_depth || indices.len() < 2 * params.min_samples_leaf {
            let node = self.nodes.len() as u32;
            self.nodes.push(RegNode::Leaf { value: leaf_value });
            return node;
        }

        // Best split by gain = GL²/HL + GR²/HR − G²/H. Like the CART
        // implementation, zero-gain splits are accepted (ties broken by
        // first candidate) so XOR-like targets remain learnable; max_depth
        // bounds the recursion.
        let parent_score = g_sum * g_sum / (h_sum + 1e-6);
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
        let mut sorted: Vec<(f64, f64, f64)> = Vec::with_capacity(indices.len());
        for feature in 0..x.n_cols() {
            sorted.clear();
            sorted.extend(
                indices
                    .iter()
                    .map(|&i| (x.get(i, feature), gradients[i], hessians[i])),
            );
            sorted.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let mut gl = 0.0;
            let mut hl = 0.0;
            for k in 1..sorted.len() {
                gl += sorted[k - 1].1;
                hl += sorted[k - 1].2;
                if sorted[k].0 == sorted[k - 1].0 {
                    continue;
                }
                if k < params.min_samples_leaf || sorted.len() - k < params.min_samples_leaf {
                    continue;
                }
                let gr = g_sum - gl;
                let hr = h_sum - hl;
                let gain = gl * gl / (hl + 1e-6) + gr * gr / (hr + 1e-6) - parent_score;
                if best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((feature, (sorted[k - 1].0 + sorted[k].0) / 2.0, gain));
                }
            }
        }

        match best {
            None => {
                let node = self.nodes.len() as u32;
                self.nodes.push(RegNode::Leaf { value: leaf_value });
                node
            }
            Some((feature, threshold, _)) => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|&&i| x.get(i, feature) < threshold);
                let node = self.nodes.len() as u32;
                self.nodes.push(RegNode::Split {
                    feature,
                    threshold,
                    left: 0,
                    right: 0,
                });
                let left = self.grow(x, gradients, hessians, left_idx, params, depth + 1);
                let right = self.grow(x, gradients, hessians, right_idx, params, depth + 1);
                if let RegNode::Split {
                    left: l, right: r, ..
                } = &mut self.nodes[node as usize]
                {
                    *l = left;
                    *r = right;
                }
                node
            }
        }
    }
}

/// A trained gradient-boosted ensemble.
#[derive(Debug, Clone)]
pub struct GradientBoostedTrees {
    base_score: f64,
    trees: Vec<RegressionTree>,
    learning_rate: f64,
}

impl GradientBoostedTrees {
    /// Fits the ensemble with Newton boosting on the logistic loss.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or lengths mismatch.
    pub fn fit(x: &FeatureMatrix, y: &[bool], params: &GbdtParams) -> Self {
        assert!(x.n_rows() > 0, "cannot fit on an empty matrix");
        assert_eq!(x.n_rows(), y.len(), "feature/label length mismatch");
        let n = x.n_rows();
        let pos_rate = (y.iter().filter(|&&l| l).count() as f64 / n as f64).clamp(1e-6, 1.0 - 1e-6);
        let base_score = (pos_rate / (1.0 - pos_rate)).ln();

        let mut scores = vec![base_score; n];
        let mut gradients = vec![0.0; n];
        let mut hessians = vec![0.0; n];
        let mut trees = Vec::with_capacity(params.n_rounds);
        for _ in 0..params.n_rounds {
            for i in 0..n {
                let p = sigmoid(scores[i]);
                gradients[i] = p - if y[i] { 1.0 } else { 0.0 };
                hessians[i] = (p * (1.0 - p)).max(1e-9);
            }
            let tree = RegressionTree::fit(x, &gradients, &hessians, params);
            for (i, score) in scores.iter_mut().enumerate() {
                *score += params.learning_rate * tree.predict(x.row(i));
            }
            trees.push(tree);
        }
        GradientBoostedTrees {
            base_score,
            trees,
            learning_rate: params.learning_rate,
        }
    }

    /// Number of boosting rounds.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for GradientBoostedTrees {
    fn predict_proba(&self, row: &[f64]) -> f64 {
        let mut score = self.base_score;
        for tree in &self.trees {
            score += self.learning_rate * tree.predict(row);
        }
        sigmoid(score)
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_threshold_rule() {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64]).collect();
        let y: Vec<bool> = (0..60).map(|i| i >= 30).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let model = GradientBoostedTrees::fit(&x, &y, &GbdtParams::default());
        assert_eq!(model.predict_batch(&x), y);
    }

    #[test]
    fn learns_xor_with_depth_two_trees() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for rep in 0..8 {
            for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
                rows.push(vec![a, b, rep as f64 * 0.001]);
                y.push((a == 1.0) != (b == 1.0));
            }
        }
        let x = FeatureMatrix::from_rows(&rows);
        let params = GbdtParams {
            max_depth: 2,
            n_rounds: 80,
            min_samples_leaf: 1,
            ..Default::default()
        };
        let model = GradientBoostedTrees::fit(&x, &y, &params);
        let pred = model.predict_batch(&x);
        let correct = pred.iter().zip(&y).filter(|(p, t)| p == t).count();
        assert_eq!(correct, y.len(), "XOR accuracy {correct}/{}", y.len());
    }

    #[test]
    fn base_score_matches_prior_with_zero_rounds() {
        let x = FeatureMatrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let y = vec![true, true, true, false];
        let params = GbdtParams {
            n_rounds: 0,
            ..Default::default()
        };
        let model = GradientBoostedTrees::fit(&x, &y, &params);
        assert!((model.predict_proba(&[9.0]) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn more_rounds_fit_the_training_data_better() {
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 7) as f64, (i % 5) as f64])
            .collect();
        let y: Vec<bool> = (0..40).map(|i| (i % 7 + i % 5) % 2 == 0).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let shallow = GradientBoostedTrees::fit(
            &x,
            &y,
            &GbdtParams {
                n_rounds: 2,
                ..Default::default()
            },
        );
        let deep = GradientBoostedTrees::fit(
            &x,
            &y,
            &GbdtParams {
                n_rounds: 100,
                min_samples_leaf: 1,
                ..Default::default()
            },
        );
        let acc = |m: &GradientBoostedTrees| {
            m.predict_batch(&x)
                .iter()
                .zip(&y)
                .filter(|(p, t)| p == t)
                .count()
        };
        assert!(acc(&deep) >= acc(&shallow));
        assert!(acc(&deep) as f64 / y.len() as f64 > 0.9);
    }

    #[test]
    fn probabilities_are_in_unit_interval() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y: Vec<bool> = (0..30).map(|i| i % 3 == 0).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let model = GradientBoostedTrees::fit(&x, &y, &GbdtParams::default());
        for p in model.predict_proba_batch(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
