//! Permutation feature importance (Breiman, 2001): how much a model's
//! accuracy degrades when one feature column is shuffled, breaking its
//! relationship with the label. Model-agnostic — works through the
//! [`Classifier`] trait — and the standard first question before a
//! subgroup-level divergence analysis: *which features matter at all?*

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::matrix::FeatureMatrix;
use crate::Classifier;

/// Per-feature importances: mean accuracy drop over shuffle repetitions.
#[derive(Debug, Clone)]
pub struct FeatureImportance {
    /// Baseline accuracy on `(x, y)`.
    pub baseline_accuracy: f64,
    /// `importances[f]` = baseline − mean shuffled accuracy for feature `f`.
    pub importances: Vec<f64>,
}

impl FeatureImportance {
    /// Features ranked by importance, largest drop first.
    pub fn ranking(&self) -> Vec<(usize, f64)> {
        let mut idx: Vec<(usize, f64)> = self.importances.iter().copied().enumerate().collect();
        idx.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        idx
    }
}

/// Computes permutation importance of every feature with `n_repeats`
/// shuffles each.
///
/// # Panics
///
/// Panics on empty input, length mismatch, or `n_repeats == 0`.
pub fn permutation_importance<C: Classifier>(
    model: &C,
    x: &FeatureMatrix,
    y: &[bool],
    n_repeats: usize,
    seed: u64,
) -> FeatureImportance {
    assert!(x.n_rows() > 0, "need at least one row");
    assert_eq!(x.n_rows(), y.len(), "feature/label length mismatch");
    assert!(n_repeats > 0, "need at least one repeat");
    let n = x.n_rows();
    let mut rng = StdRng::seed_from_u64(seed);

    let accuracy = |predictions: &[bool]| -> f64 {
        predictions.iter().zip(y).filter(|(p, t)| p == t).count() as f64 / n as f64
    };
    let baseline_accuracy = accuracy(&model.predict_batch(x));

    let mut importances = Vec::with_capacity(x.n_cols());
    let mut row_buf = vec![0.0; x.n_cols()];
    let mut permuted: Vec<usize> = (0..n).collect();
    for feature in 0..x.n_cols() {
        let mut total_drop = 0.0;
        for _ in 0..n_repeats {
            permuted.shuffle(&mut rng);
            let mut predictions = Vec::with_capacity(n);
            #[allow(clippy::needless_range_loop)] // r indexes both x.row and permuted
            for r in 0..n {
                row_buf.copy_from_slice(x.row(r));
                row_buf[feature] = x.get(permuted[r], feature);
                predictions.push(model.predict_row(&row_buf));
            }
            total_drop += baseline_accuracy - accuracy(&predictions);
        }
        importances.push(total_drop / n_repeats as f64);
    }
    FeatureImportance {
        baseline_accuracy,
        importances,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{DecisionTree, DecisionTreeParams};

    /// Label depends on feature 0 only; feature 1 is noise.
    fn fixture() -> (FeatureMatrix, Vec<bool>, DecisionTree) {
        let rows: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        let y: Vec<bool> = (0..80).map(|i| i >= 40).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let tree = DecisionTree::fit(&x, &y, &DecisionTreeParams::default(), 0);
        (x, y, tree)
    }

    #[test]
    fn informative_feature_dominates() {
        let (x, y, tree) = fixture();
        let fi = permutation_importance(&tree, &x, &y, 5, 1);
        assert!((fi.baseline_accuracy - 1.0).abs() < 1e-12);
        assert!(fi.importances[0] > 0.3, "{:?}", fi.importances);
        assert!(fi.importances[1].abs() < 0.05, "{:?}", fi.importances);
        assert_eq!(fi.ranking()[0].0, 0);
    }

    #[test]
    fn importance_is_deterministic_per_seed() {
        let (x, y, tree) = fixture();
        let a = permutation_importance(&tree, &x, &y, 3, 7);
        let b = permutation_importance(&tree, &x, &y, 3, 7);
        assert_eq!(a.importances, b.importances);
    }

    #[test]
    fn constant_model_has_zero_importance_everywhere() {
        struct AlwaysTrue;
        impl Classifier for AlwaysTrue {
            fn predict_proba(&self, _row: &[f64]) -> f64 {
                1.0
            }
        }
        let (x, y, _) = fixture();
        let fi = permutation_importance(&AlwaysTrue, &x, &y, 3, 0);
        assert!(fi.importances.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one repeat")]
    fn zero_repeats_panics() {
        let (x, y, tree) = fixture();
        let _ = permutation_importance(&tree, &x, &y, 0, 0);
    }
}
