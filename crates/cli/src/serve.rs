//! `serve`: a resident analysis service over NDJSON.
//!
//! One request per line on stdin, one JSON response per line on stdout.
//! The service keeps registered datasets in memory and mined lattices in
//! a byte-bounded LRU [`ArenaCache`]; with `--artifact DIR` it also
//! reads and writes the on-disk artifact registry, so a lattice is
//! mined at most once across restarts. Queries recount against the
//! cached lattice — optionally under a *new* prediction vector supplied
//! inline — so serving a fresh model's analysis costs one streaming
//! recount, never a re-mine.
//!
//! # Protocol
//!
//! ```text
//! {"op":"register","name":"d1","path":"data.csv","label":"y","pred":"yhat"}
//! {"op":"register","name":"d1","artifact":"dir/d1.dxd"}
//! {"op":"mine","name":"d1","support":0.1}
//! {"op":"query","name":"d1","support":0.1,"metric":"FPR","top":5}
//! {"op":"query","name":"d1","support":0.1,"u":[0,1,1,0]}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! Every response carries `"ok": true|false`; a malformed line or an
//! unknown op yields `{"ok":false,"error":...}` and the loop continues.
//! Only `shutdown` (or end of input) ends the loop.

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::Arc;

use datasets::artifact::{self, ArenaKey};
use divexplorer::{ArenaCache, CacheKey, DiscreteDataset, DivExplorer, SortBy};
use fpm::ItemsetArena;
use serde_json::Value;

use crate::artifacts::{candidates_of, engine_label};
use crate::{budget_from_args, parse_engine, parse_metrics, prepare, Args, CliError};

/// Default lattice-cache budget: 256 MiB of resident arenas.
const DEFAULT_CACHE_BYTES: u64 = 256 << 20;

struct Registered {
    data: DiscreteDataset,
    v: Vec<bool>,
    u: Vec<bool>,
    hash: u64,
}

struct ServeState {
    /// On-disk artifact registry, if `--artifact DIR` was given.
    dir: Option<PathBuf>,
    datasets: HashMap<String, Registered>,
    cache: ArenaCache,
}

/// Runs the request loop until `shutdown` or end of input. Exposed over
/// generic reader/writer so tests drive it in-process.
pub fn serve_loop<R: BufRead, W: Write>(args: &Args, input: R, mut out: W) -> Result<(), CliError> {
    let mut state = ServeState {
        dir: (!args.artifact.is_empty()).then(|| PathBuf::from(&args.artifact)),
        datasets: HashMap::new(),
        cache: ArenaCache::new(DEFAULT_CACHE_BYTES),
    };
    for line in input.lines() {
        let line = line.map_err(|e| CliError::Input(format!("request stream: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = {
            let _span = obs::span("serve.request");
            handle_request(&mut state, args, &line)
        };
        let text = serde_json::to_string(&response).expect("response serialization is infallible");
        writeln!(out, "{text}").map_err(|e| CliError::Input(format!("response stream: {e}")))?;
        out.flush()
            .map_err(|e| CliError::Input(format!("response stream: {e}")))?;
        if shutdown {
            break;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// JSON plumbing (the serde shim has no `json!` macro; responses are
// built as literal `Value` trees).

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn text(s: impl Into<String>) -> Value {
    Value::String(s.into())
}

fn ok(op: &str, mut extra: Vec<(&str, Value)>) -> Value {
    let mut fields = vec![("ok", Value::Bool(true)), ("op", text(op))];
    fields.append(&mut extra);
    obj(fields)
}

fn fail(message: impl Into<String>) -> Value {
    obj(vec![
        ("ok", Value::Bool(false)),
        ("error", Value::String(message.into())),
    ])
}

fn str_field(request: &Value, key: &str) -> Option<String> {
    request[key].as_str().map(str::to_string)
}

fn require(request: &Value, key: &str) -> Result<String, Value> {
    str_field(request, key).ok_or_else(|| fail(format!("'{key}' (string) is required")))
}

/// Parses an optional label vector: JSON numbers (0/1) or booleans.
fn bool_vector(value: &Value, n_rows: usize) -> Result<Vec<bool>, Value> {
    let items = value
        .as_array()
        .ok_or_else(|| fail("'u' must be an array of 0/1 or booleans"))?;
    if items.len() != n_rows {
        return Err(fail(format!(
            "'u' has {} entries, dataset has {n_rows} rows",
            items.len()
        )));
    }
    items
        .iter()
        .map(|v| match (v.as_bool(), v.as_f64()) {
            (Some(b), _) => Ok(b),
            (None, Some(x)) if x == 0.0 || x == 1.0 => Ok(x == 1.0),
            _ => Err(fail("'u' entries must be 0/1 or booleans")),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Request dispatch

fn handle_request(state: &mut ServeState, args: &Args, line: &str) -> (Value, bool) {
    let request: Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => return (fail(format!("bad request: {e}")), false),
    };
    let op = match request["op"].as_str() {
        Some(op) => op.to_string(),
        None => return (fail("'op' (string) is required"), false),
    };
    let response = match op.as_str() {
        "register" => handle_register(state, args, &request),
        "mine" => handle_mine(state, args, &request),
        "query" => handle_query(state, args, &request),
        "stats" => Ok(ok(
            "stats",
            vec![
                ("datasets", Value::Number(state.datasets.len() as f64)),
                ("cached_lattices", Value::Number(state.cache.len() as f64)),
                (
                    "resident_bytes",
                    Value::Number(state.cache.resident_bytes() as f64),
                ),
                (
                    "capacity_bytes",
                    Value::Number(state.cache.capacity_bytes() as f64),
                ),
            ],
        )),
        "shutdown" => return (ok("shutdown", vec![]), true),
        other => Err(fail(format!("unknown op '{other}'"))),
    };
    (response.unwrap_or_else(|e| e), false)
}

fn handle_register(state: &mut ServeState, args: &Args, request: &Value) -> Result<Value, Value> {
    let name = require(request, "name")?;
    let registered = if let Some(path) = str_field(request, "artifact") {
        // A persisted dataset artifact: decoding re-validates checksum,
        // schema and the one-hot invariant.
        let ds = artifact::load_dataset(std::path::Path::new(&path))
            .map_err(|e| fail(format!("{path}: {e}")))?;
        Registered {
            data: ds.data,
            v: ds.v,
            u: ds.u,
            hash: ds.hash,
        }
    } else {
        let path = require(request, "path")?;
        let mut csv_args = args.clone();
        csv_args.label = require(request, "label")?;
        csv_args.pred = require(request, "pred")?;
        if let Some(bins) = request["bins"].as_u64() {
            csv_args.bins = bins as usize;
        }
        let content = std::fs::read_to_string(&path).map_err(|e| fail(format!("{path}: {e}")))?;
        let prepared = prepare(&content, &csv_args).map_err(|e| fail(e.to_string()))?;
        let hash = artifact::dataset_hash(&prepared.data);
        Registered {
            data: prepared.data,
            v: prepared.v,
            u: prepared.u,
            hash,
        }
    };
    let rows = registered.data.n_rows();
    let hash = registered.hash;
    state.datasets.insert(name.clone(), registered);
    Ok(ok(
        "register",
        vec![
            ("name", text(name)),
            ("rows", Value::Number(rows as f64)),
            ("hash", text(format!("{hash:016x}"))),
        ],
    ))
}

/// The mine-or-load path shared by `mine` and `query`: cache, then the
/// on-disk registry, then a cold mine (written through to disk when a
/// registry directory is configured).
fn ensure_lattice(
    state: &mut ServeState,
    args: &Args,
    request: &Value,
    name: &str,
) -> Result<(Arc<ItemsetArena<()>>, &'static str, f64), Value> {
    let support = request["support"].as_f64().unwrap_or(args.support);
    let engine = str_field(request, "engine").unwrap_or_else(|| engine_label(args));
    let reg = state
        .datasets
        .get(name)
        .ok_or_else(|| fail(format!("dataset '{name}' is not registered")))?;
    let n = reg.data.n_rows();
    let params = fpm::MiningParams::with_min_support_fraction(support, n);
    let cache_key = CacheKey {
        dataset_hash: reg.hash,
        min_support_count: params.min_support_count,
        engine: engine.clone(),
        max_len: None,
    };
    if let Some(arena) = state.cache.get(&cache_key) {
        return Ok((arena, "cache", support));
    }
    let arena_key = ArenaKey {
        dataset_hash: reg.hash,
        min_support_count: params.min_support_count,
        max_len: None,
        engine: engine.clone(),
        n_rows: n as u64,
    };
    if let Some(dir) = &state.dir {
        let path = dir.join(artifact::arena_file_name(&arena_key));
        if path.exists() {
            // A tampered registry file fails closed with the typed
            // artifact error; the service never recounts unverified bytes.
            let (loaded_key, candidates) = artifact::load_arena(&path)
                .map_err(|e| fail(format!("{}: {e}", path.display())))?;
            if loaded_key != arena_key {
                return Err(fail(format!(
                    "{}: artifact key does not match its file name",
                    path.display()
                )));
            }
            let arena = Arc::new(candidates);
            state.cache.insert(cache_key, Arc::clone(&arena));
            return Ok((arena, "artifact", support));
        }
    }
    let algorithm = parse_engine(&engine).map_err(|e| fail(e.to_string()))?;
    let explorer = DivExplorer::new(support)
        .with_algorithm(algorithm)
        .with_budget(budget_from_args(args));
    let report = explorer
        .explore(&reg.data, &reg.v, &reg.u, &args.metrics)
        .map_err(|e| fail(e.to_string()))?;
    if let Some(reason) = report.completeness().truncation_reason() {
        return Err(fail(format!(
            "mining truncated ({reason}); refusing to serve a partial lattice"
        )));
    }
    let candidates = candidates_of(&report);
    if let Some(dir) = &state.dir {
        std::fs::create_dir_all(dir)
            .and_then(|()| {
                let path = dir.join(artifact::arena_file_name(&arena_key));
                artifact::save_arena(&path, &arena_key, &candidates)
                    .map_err(|e| std::io::Error::other(e.to_string()))
            })
            .map_err(|e| fail(format!("artifact registry: {e}")))?;
    }
    let arena = Arc::new(candidates);
    state.cache.insert(cache_key, Arc::clone(&arena));
    Ok((arena, "mined", support))
}

fn handle_mine(state: &mut ServeState, args: &Args, request: &Value) -> Result<Value, Value> {
    let name = require(request, "name")?;
    let (arena, source, support) = ensure_lattice(state, args, request, &name)?;
    Ok(ok(
        "mine",
        vec![
            ("name", text(name)),
            ("patterns", Value::Number(arena.len() as f64)),
            ("support", Value::Number(support)),
            ("source", text(source)),
        ],
    ))
}

fn handle_query(state: &mut ServeState, args: &Args, request: &Value) -> Result<Value, Value> {
    let name = require(request, "name")?;
    let (arena, source, support) = ensure_lattice(state, args, request, &name)?;
    let reg = &state.datasets[&name];
    let metrics = match str_field(request, "metric") {
        Some(spec) => parse_metrics(&spec).map_err(|e| fail(e.to_string()))?,
        None => args.metrics.clone(),
    };
    let u_override;
    let u: &[bool] = if request["u"].is_null() {
        &reg.u
    } else {
        u_override = bool_vector(&request["u"], reg.data.n_rows())?;
        &u_override
    };
    let top = request["top"].as_u64().map_or(args.top, |t| t as usize);

    // The warm path: one streaming recount against the shared lattice,
    // no mining phase (see DESIGN.md §6g).
    let report = DivExplorer::new(support)
        .with_budget(budget_from_args(args))
        .from_artifact(&reg.data, &arena, &reg.v, u, &metrics)
        .map_err(|e| fail(e.to_string()))?;

    let mut rows = Vec::new();
    for idx in report.ranked(0, SortBy::Divergence).into_iter().take(top) {
        rows.push(obj(vec![
            ("itemset", text(report.display_itemset(report.items(idx)))),
            ("support", Value::Number(report.support_fraction(idx))),
            ("divergence", Value::Number(report.divergence(idx, 0))),
            ("t", Value::Number(report.t_statistic(idx, 0))),
        ]));
    }
    Ok(ok(
        "query",
        vec![
            ("name", text(name)),
            ("metric", text(metrics[0].short_name())),
            ("dataset_rate", Value::Number(report.dataset_rate(0))),
            ("patterns", Value::Number(report.len() as f64)),
            ("source", text(source)),
            ("results", Value::Array(rows)),
        ],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Command;

    const CSV: &str = "\
grp,other,y,yhat
a,x,0,1
a,y,0,1
a,x,0,1
a,y,0,0
b,x,0,0
b,y,0,0
b,x,0,0
b,y,0,1
";

    fn serve_args(artifact_dir: &str) -> Args {
        let mut argv = vec!["serve".to_string()];
        if !artifact_dir.is_empty() {
            argv.extend(["--artifact".to_string(), artifact_dir.to_string()]);
        }
        let args = Args::parse(argv).unwrap();
        assert_eq!(args.command, Command::Serve);
        args
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cli-serve-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Drives the loop over in-memory NDJSON and parses each response.
    fn drive(args: &Args, requests: &[&str]) -> Vec<Value> {
        let input = requests.join("\n");
        let mut out = Vec::new();
        serve_loop(args, input.as_bytes(), &mut out).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|line| serde_json::from_str(line).unwrap())
            .collect()
    }

    #[test]
    fn register_mine_query_roundtrip() {
        let dir = temp_dir("roundtrip");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, CSV).unwrap();
        let register = format!(
            r#"{{"op":"register","name":"toy","path":"{}","label":"y","pred":"yhat"}}"#,
            csv_path.display()
        );
        let responses = drive(
            &serve_args(""),
            &[
                &register,
                r#"{"op":"mine","name":"toy","support":0.25}"#,
                r#"{"op":"mine","name":"toy","support":0.25}"#,
                r#"{"op":"query","name":"toy","support":0.25,"top":3}"#,
                r#"{"op":"stats"}"#,
                r#"{"op":"shutdown"}"#,
            ],
        );
        assert_eq!(responses.len(), 6);
        for r in &responses {
            assert_eq!(r["ok"].as_bool(), Some(true), "{r:?}");
        }
        assert_eq!(responses[0]["rows"].as_u64(), Some(8));
        assert_eq!(responses[1]["source"].as_str(), Some("mined"));
        assert_eq!(responses[2]["source"].as_str(), Some("cache"));
        let results = responses[3]["results"].as_array().unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0]["itemset"].as_str(), Some("grp=a, other=x"));
        assert!((results[0]["divergence"].as_f64().unwrap() - 0.5).abs() < 1e-9);
        assert_eq!(responses[4]["cached_lattices"].as_u64(), Some(1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn query_with_an_inline_label_vector_recounts_without_remining() {
        let dir = temp_dir("relabel");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, CSV).unwrap();
        let register = format!(
            r#"{{"op":"register","name":"toy","path":"{}","label":"y","pred":"yhat"}}"#,
            csv_path.display()
        );
        // A second query predicts positive everywhere: every subgroup's
        // FPR equals the overall rate, so all divergences collapse to
        // zero — while the lattice is served from cache, not re-mined.
        let responses = drive(
            &serve_args(""),
            &[
                &register,
                r#"{"op":"query","name":"toy","support":0.25,"top":1}"#,
                r#"{"op":"query","name":"toy","support":0.25,"top":1,"u":[1,1,1,1,1,1,1,1]}"#,
            ],
        );
        assert_eq!(responses[1]["source"].as_str(), Some("mined"));
        assert_eq!(responses[2]["source"].as_str(), Some("cache"));
        assert_eq!(responses[1]["patterns"], responses[2]["patterns"]);
        let before = responses[1]["results"][0]["divergence"].as_f64().unwrap();
        let after = responses[2]["results"][0]["divergence"].as_f64().unwrap();
        assert!((before - 0.5).abs() < 1e-9, "{before}");
        assert!(after.abs() < 1e-9, "{after}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lattices_persist_to_the_artifact_registry_across_restarts() {
        let dir = temp_dir("registry");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, CSV).unwrap();
        let registry = dir.join("artifacts");
        let args = serve_args(registry.to_str().unwrap());
        let register = format!(
            r#"{{"op":"register","name":"toy","path":"{}","label":"y","pred":"yhat"}}"#,
            csv_path.display()
        );
        let mine = r#"{"op":"mine","name":"toy","support":0.25}"#;
        let first = drive(&args, &[&register, mine]);
        assert_eq!(first[1]["source"].as_str(), Some("mined"));
        // A fresh loop (fresh cache) finds the persisted artifact.
        let second = drive(&args, &[&register, mine]);
        assert_eq!(second[1]["source"].as_str(), Some("artifact"));
        assert_eq!(second[1]["patterns"], first[1]["patterns"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn register_accepts_a_dataset_artifact() {
        let dir = temp_dir("from-artifact");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, CSV).unwrap();
        // First loop registers from CSV and we persist the dataset via
        // the artifact API; second loop registers from the artifact.
        let mut csv_args = serve_args("");
        csv_args.label = "y".to_string();
        csv_args.pred = "yhat".to_string();
        let prepared = prepare(CSV, &csv_args).unwrap();
        let ds_path = dir.join("toy.dxd");
        artifact::save_dataset(&ds_path, &prepared.data, &prepared.v, &prepared.u).unwrap();

        let register = format!(
            r#"{{"op":"register","name":"toy","artifact":"{}"}}"#,
            ds_path.display()
        );
        let responses = drive(
            &serve_args(""),
            &[
                &register,
                r#"{"op":"query","name":"toy","support":0.25,"top":1}"#,
            ],
        );
        assert_eq!(responses[0]["ok"].as_bool(), Some(true));
        assert_eq!(responses[0]["rows"].as_u64(), Some(8));
        assert_eq!(
            responses[1]["results"][0]["itemset"].as_str(),
            Some("grp=a, other=x")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_requests_fail_soft_and_the_loop_continues() {
        let responses = drive(
            &serve_args(""),
            &[
                "this is not json",
                r#"{"no_op_field":1}"#,
                r#"{"op":"launch"}"#,
                r#"{"op":"mine","name":"ghost"}"#,
                r#"{"op":"register","name":"x"}"#,
                r#"{"op":"stats"}"#,
            ],
        );
        assert_eq!(responses.len(), 6);
        for r in &responses[..5] {
            assert_eq!(r["ok"].as_bool(), Some(false), "{r:?}");
            assert!(r["error"].as_str().is_some());
        }
        assert_eq!(responses[5]["ok"].as_bool(), Some(true));
    }

    #[test]
    fn shutdown_stops_the_loop_before_later_requests() {
        let responses = drive(
            &serve_args(""),
            &[r#"{"op":"shutdown"}"#, r#"{"op":"stats"}"#],
        );
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0]["op"].as_str(), Some("shutdown"));
    }

    #[test]
    fn a_tampered_registry_artifact_fails_closed() {
        let dir = temp_dir("tampered");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, CSV).unwrap();
        let registry = dir.join("artifacts");
        let args = serve_args(registry.to_str().unwrap());
        let register = format!(
            r#"{{"op":"register","name":"toy","path":"{}","label":"y","pred":"yhat"}}"#,
            csv_path.display()
        );
        let mine = r#"{"op":"mine","name":"toy","support":0.25}"#;
        drive(&args, &[&register, mine]);
        // Flip one byte in the persisted arena artifact.
        let arena_file = std::fs::read_dir(&registry)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|x| x == "dxa"))
            .unwrap();
        let mut bytes = std::fs::read(&arena_file).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&arena_file, &bytes).unwrap();
        let responses = drive(&args, &[&register, mine]);
        assert_eq!(responses[1]["ok"].as_bool(), Some(false));
        assert!(
            responses[1]["error"]
                .as_str()
                .unwrap()
                .contains("checksum mismatch"),
            "{:?}",
            responses[1]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
