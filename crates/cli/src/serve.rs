//! `serve`: a resident, fault-tolerant analysis service over NDJSON.
//!
//! One request per line on stdin, one JSON response per line on stdout.
//! The service keeps registered datasets in memory and mined lattices in
//! a byte-bounded LRU [`ArenaCache`]; with `--artifact DIR` it also
//! reads and writes the on-disk artifact registry, so a lattice is
//! mined at most once across restarts. Queries recount against the
//! cached lattice — optionally under a *new* prediction vector supplied
//! inline — so serving a fresh model's analysis costs one streaming
//! recount, never a re-mine.
//!
//! # Protocol
//!
//! ```text
//! {"op":"register","name":"d1","path":"data.csv","label":"y","pred":"yhat"}
//! {"op":"register","name":"d1","artifact":"dir/d1.dxd"}
//! {"op":"mine","name":"d1","support":0.1}
//! {"op":"query","name":"d1","support":0.1,"metric":"FPR","top":5}
//! {"op":"query","name":"d1","support":0.1,"u":[0,1,1,0]}
//! {"op":"stats"}
//! {"op":"metrics"}
//! {"op":"metrics","format":"json"}
//! {"op":"trace"}
//! {"op":"trace","req":7}
//! {"op":"panic"}
//! {"op":"shutdown"}
//! ```
//!
//! Every response carries `"ok": true|false`; a malformed line or an
//! unknown op yields `{"ok":false,"error":...}` and the loop continues.
//! Only `shutdown` (or end of input) ends the loop.
//!
//! # Fault model (see DESIGN.md §6h)
//!
//! The loop is built so that no single request — malformed, poisoned,
//! panicking or slow — can take the service down or wedge it:
//!
//! - **Panic isolation.** Each request runs under `catch_unwind`; a
//!   panicking handler produces `{"ok":false,...}` and the loop
//!   continues. `{"op":"panic"}` is a deliberate fault drill that
//!   exercises exactly this path.
//! - **Deadlines.** `--request-timeout-ms MS` wires a per-request
//!   wall-clock budget into the mining/recount [`fpm::Budget`]
//!   machinery; an over-budget request fails soft with a deadline
//!   message instead of holding the loop.
//! - **Quarantine + rebuild.** A corrupt, truncated or version-skewed
//!   registry artifact is renamed to `*.quarantine`, the request falls
//!   back cache → registry → cold mine, and the rebuilt lattice is
//!   re-persisted (crash-safely: temp file + fsync + atomic rename).
//!   The response carries a `warnings` array describing the recovery.
//! - **Soft persistence.** A failing registry write degrades to
//!   serving from memory with a warning, never to a failed request.
//!
//! # Live observability (see DESIGN.md §6i)
//!
//! Every request gets a monotone id and runs under an
//! [`obs::request_scope`], so all telemetry it emits — spans, counters,
//! histograms, even from parallel mining workers — is attributable to
//! it. The loop installs (teeing with any recorder already present,
//! e.g. `--trace-json`) one fused [`obs::LiveRecorder`] *plane* — the
//! metrics registry and the always-on flight recorder behind a single
//! lock, so every event pays one mutex and both views stay mutually
//! consistent — for the loop's lifetime:
//!
//! - The registry half is the **single source of truth** for every
//!   session counter. `stats` (operator-friendly JSON), `metrics`
//!   (Prometheus text exposition with per-op latency histograms and
//!   p50/p95/p99) and `--metrics-file` periodic snapshots are all
//!   derived views of the same registry — they cannot diverge.
//! - The flight half retains the last N requests' complete event
//!   streams in a fixed-size ring. `trace` dumps it; a panicking,
//!   timed-out or `--slow-ms`-slow request automatically dumps its own
//!   trace to stderr, so every soft failure ships its span tree.
//!
//! `stats` fields: `requests`, `failures`, `panics`, `timeouts`,
//! `quarantines`, `persist_failures`, `io_retries`, and the cache's
//! `cache_hits`/`cache_misses`/`cache_evictions`.

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use datasets::artifact::{self, ArenaKey};
use datasets::artifact_io::{self, ArtifactIo, DiskIo};
use divexplorer::{ArenaCache, CacheKey, DiscreteDataset, DivExplorer, SortBy};
use fpm::{ItemsetArena, TruncationReason};
use obs::LiveRecorder;
use serde_json::Value;

use crate::artifacts::{candidates_of, engine_label};
use crate::{budget_from_args, parse_engine, parse_metrics, prepare, Args, CliError};

/// Default lattice-cache budget: 256 MiB of resident arenas.
const DEFAULT_CACHE_BYTES: u64 = 256 << 20;

struct Registered {
    data: DiscreteDataset,
    v: Vec<bool>,
    u: Vec<bool>,
    hash: u64,
}

struct ServeState {
    /// On-disk artifact registry, if `--artifact DIR` was given.
    dir: Option<PathBuf>,
    datasets: HashMap<String, Registered>,
    cache: ArenaCache,
    /// The session's live telemetry plane: metrics registry and flight
    /// ring fused behind one lock — the single source of truth every
    /// counter in `stats`, `metrics`, `trace` and `--metrics-file`
    /// derives from.
    plane: Arc<LiveRecorder>,
}

/// Serializes serve sessions' use of the process-global obs facade
/// (in-process test loops would otherwise cross-pollute registries).
static OBS_SESSION: Mutex<()> = Mutex::new(());

/// Installs the serve telemetry plane (the fused [`LiveRecorder`],
/// teeing with any recorder already present, e.g. `--trace-json`) for
/// the lifetime of the guard; restores the previous state on drop.
struct ObsSession {
    _lock: MutexGuard<'static, ()>,
    prev: Option<Arc<dyn obs::Recorder>>,
}

impl ObsSession {
    fn install(plane: Arc<LiveRecorder>) -> ObsSession {
        // A panicked serve test must not poison later sessions; the
        // lock only serializes, it guards no invariant of its own.
        let lock = OBS_SESSION
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let prev = obs::current();
        match prev.clone() {
            // The common production shape: the plane alone, no tee hop.
            None => obs::install(plane),
            Some(extra) => obs::install(Arc::new(obs::Tee(vec![plane, extra]))),
        }
        ObsSession { _lock: lock, prev }
    }
}

impl Drop for ObsSession {
    fn drop(&mut self) {
        match self.prev.take() {
            Some(prev) => obs::install(prev),
            None => {
                obs::uninstall();
            }
        }
    }
}

/// Periodic `--metrics-file` snapshots: the registry rendered as a
/// Prometheus exposition, written through the crash-safe
/// [`artifact_io::atomic_write`] protocol so a scraper never reads a
/// torn file.
struct MetricsSink {
    path: Option<PathBuf>,
    interval: Duration,
    last_write: Option<Instant>,
}

impl MetricsSink {
    fn new(args: &Args) -> MetricsSink {
        MetricsSink {
            path: args.metrics_file.as_ref().map(PathBuf::from),
            interval: Duration::from_millis(args.metrics_interval_ms),
            last_write: None,
        }
    }

    fn maybe_write(&mut self, registry: &LiveRecorder, force: bool, diag: &mut dyn Write) {
        let Some(path) = &self.path else { return };
        let due = match self.last_write {
            None => true,
            Some(at) => at.elapsed() >= self.interval,
        };
        if !force && !due {
            return;
        }
        self.last_write = Some(Instant::now());
        let body = obs::export::prometheus(&registry.snapshot());
        if let Err(e) = artifact_io::atomic_write(&DiskIo, path, body.as_bytes()) {
            // Best-effort like all telemetry: a full disk must not take
            // down the service, but the operator should hear about it.
            obs::counter("serve.metrics_write_failures", 1);
            let _ = writeln!(
                diag,
                "serve: metrics snapshot {} failed: {e}",
                path.display()
            );
        }
    }
}

/// Maps the (possibly unparseable) request to a static op label for
/// request scoping and the per-op latency histograms.
fn op_label(parsed: &Result<Value, String>) -> &'static str {
    match parsed {
        Err(_) => "invalid",
        Ok(request) => match request["op"].as_str() {
            Some("register") => "register",
            Some("mine") => "mine",
            Some("query") => "query",
            Some("stats") => "stats",
            Some("metrics") => "metrics",
            Some("trace") => "trace",
            Some("panic") => "panic",
            Some("shutdown") => "shutdown",
            Some(_) => "unknown",
            None => "invalid",
        },
    }
}

/// Writes one flagged request's flight-recorder slice to the diagnostic
/// stream (stderr in production): a one-line header, then the trace as
/// NDJSON — the request's complete span tree.
fn dump_flagged_trace(
    flight: &LiveRecorder,
    req_id: u64,
    reason: &str,
    elapsed: Duration,
    diag: &mut dyn Write,
) {
    let header = format!(
        "serve: request {req_id} flagged ({reason}, {}ms); flight-recorder trace follows",
        elapsed.as_millis()
    );
    match flight.trace_of(req_id) {
        Some(trace) => {
            let _ = writeln!(diag, "{header}");
            let _ = diag.write_all(trace.render_ndjson().as_bytes());
        }
        None => {
            let _ = writeln!(diag, "{header} (trace already evicted)");
        }
    }
    let _ = diag.flush();
}

/// Runs the request loop until `shutdown` or end of input. Exposed over
/// generic reader/writer so tests drive it in-process. Flight-recorder
/// dumps for flagged requests go to stderr.
pub fn serve_loop<R: BufRead, W: Write>(args: &Args, input: R, out: W) -> Result<(), CliError> {
    serve_loop_with_diag(args, input, out, &mut std::io::stderr())
}

/// [`serve_loop`] with an explicit diagnostic stream, so tests can
/// capture the slow/panic/timeout trace dumps in-process.
pub fn serve_loop_with_diag<R: BufRead, W: Write>(
    args: &Args,
    input: R,
    mut out: W,
    diag: &mut dyn Write,
) -> Result<(), CliError> {
    let plane = Arc::new(LiveRecorder::default());
    let _obs = ObsSession::install(Arc::clone(&plane));
    let mut state = ServeState {
        dir: (!args.artifact.is_empty()).then(|| PathBuf::from(&args.artifact)),
        datasets: HashMap::new(),
        cache: ArenaCache::new(DEFAULT_CACHE_BYTES),
        plane: Arc::clone(&plane),
    };
    let mut metrics_sink = MetricsSink::new(args);
    let mut next_request_id: u64 = 1;
    for line in input.lines() {
        let line = line.map_err(|e| CliError::Input(format!("request stream: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        let req_id = next_request_id;
        next_request_id += 1;
        obs::counter("serve.requests", 1);
        let parsed: Result<Value, String> =
            serde_json::from_str(&line).map_err(|e| format!("bad request: {e}"));
        let op = op_label(&parsed);
        let timeouts_before = plane.counter_value("serve.timeouts");
        let started = Instant::now();
        let mut panicked = false;
        // Per-request isolation: a panicking handler is contained here
        // and becomes a soft failure; the loop (and every registered
        // dataset and cached lattice) survives.
        let (mut response, shutdown) = {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                // The request scope lives *inside* catch_unwind so its
                // drop runs during unwinding — the flight recorder sees
                // request_end and the trace below is complete.
                let _req = obs::request_scope(req_id, op);
                let _span = obs::span("serve.request");
                handle_request(&mut state, args, &parsed)
            }));
            match outcome {
                Ok(reply) => reply,
                Err(payload) => {
                    panicked = true;
                    obs::counter("serve.panics", 1);
                    (
                        fail(format!(
                            "request handler panicked: {}; the service continues",
                            panic_message(&payload)
                        )),
                        false,
                    )
                }
            }
        };
        let elapsed = started.elapsed();
        if response["ok"].as_bool() != Some(true) {
            obs::counter("serve.failures", 1);
        }
        // Every soft failure ships its own trace: panics and expired
        // deadlines always dump, plus anything over `--slow-ms`.
        let timed_out = plane.counter_value("serve.timeouts") > timeouts_before;
        let slow = args
            .slow_ms
            .is_some_and(|ms| elapsed.as_millis() as u64 >= ms);
        if panicked || timed_out || slow {
            let reason = if panicked {
                "panic"
            } else if timed_out {
                "timeout"
            } else {
                "slow"
            };
            dump_flagged_trace(&plane, req_id, reason, elapsed, diag);
        }
        // A NaN or infinite statistic (a degenerate slice's divergence)
        // must not poison the response stream: non-finite floats become
        // JSON null, and serialization failure is itself a soft error.
        sanitize(&mut response);
        let text = serde_json::to_string(&response)
            .unwrap_or_else(|_| r#"{"ok":false,"error":"unserializable response"}"#.to_string());
        writeln!(out, "{text}").map_err(|e| CliError::Input(format!("response stream: {e}")))?;
        out.flush()
            .map_err(|e| CliError::Input(format!("response stream: {e}")))?;
        metrics_sink.maybe_write(&plane, false, diag);
        if shutdown {
            break;
        }
    }
    // Final snapshot so a scraper sees the session's last word.
    metrics_sink.maybe_write(&plane, true, diag);
    Ok(())
}

/// Best-effort human-readable panic payload.
fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Replaces every non-finite number in the tree with JSON `null`.
fn sanitize(value: &mut Value) {
    match value {
        Value::Number(n) if !n.is_finite() => *value = Value::Null,
        Value::Array(items) => items.iter_mut().for_each(sanitize),
        Value::Object(fields) => fields.iter_mut().for_each(|(_, v)| sanitize(v)),
        _ => {}
    }
}

// ---------------------------------------------------------------------
// JSON plumbing (the serde shim has no `json!` macro; responses are
// built as literal `Value` trees).

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn text(s: impl Into<String>) -> Value {
    Value::String(s.into())
}

fn num(n: u64) -> Value {
    Value::Number(n as f64)
}

fn ok(op: &str, mut extra: Vec<(&str, Value)>) -> Value {
    let mut fields = vec![("ok", Value::Bool(true)), ("op", text(op))];
    fields.append(&mut extra);
    obj(fields)
}

fn fail(message: impl Into<String>) -> Value {
    obj(vec![
        ("ok", Value::Bool(false)),
        ("error", Value::String(message.into())),
    ])
}

fn str_field(request: &Value, key: &str) -> Option<String> {
    request[key].as_str().map(str::to_string)
}

fn require(request: &Value, key: &str) -> Result<String, Value> {
    str_field(request, key).ok_or_else(|| fail(format!("'{key}' (string) is required")))
}

/// Parses the optional `support` field. A present-but-malformed value
/// (a string `"0.1"`, an out-of-range number) is a hard request error —
/// silently falling back to the CLI default would mine at a threshold
/// the caller never asked for.
fn support_field(request: &Value, args: &Args) -> Result<f64, Value> {
    match &request["support"] {
        Value::Null => Ok(args.support),
        v => match v.as_f64() {
            Some(s) if s > 0.0 && s <= 1.0 => Ok(s),
            Some(s) => Err(fail(format!("'support' must be in (0, 1], got {s}"))),
            None => Err(fail(
                "'support' must be a number in (0, 1]; strings are not coerced",
            )),
        },
    }
}

/// The per-request scale knobs, defaulted from the CLI flags. Requests
/// accept the same `threads`/`shards`/`prefetch` fields as `cli mine`
/// and `analyze`.
struct ScaleKnobs {
    threads: usize,
    shards: Option<usize>,
    prefetch: usize,
}

/// Parses the optional scale knobs with the same strictness as
/// `support`: a present-but-malformed value (a string `"4"`, a float, a
/// zero where at least one is required) is a hard request error, never
/// a silent fallback to the CLI default.
fn scale_knobs(request: &Value, args: &Args) -> Result<ScaleKnobs, Value> {
    let uint = |key: &str, min: u64| -> Result<Option<usize>, Value> {
        match &request[key] {
            Value::Null => Ok(None),
            v => match v.as_u64() {
                Some(n) if n >= min => Ok(Some(n as usize)),
                _ => Err(fail(format!(
                    "'{key}' must be an integer >= {min}; strings are not coerced"
                ))),
            },
        }
    };
    Ok(ScaleKnobs {
        threads: uint("threads", 1)?.unwrap_or(args.threads),
        shards: uint("shards", 1)?.or(args.shards),
        prefetch: uint("prefetch", 0)?.unwrap_or(args.prefetch),
    })
}

/// Parses the optional `top` field with the same strictness.
fn top_field(request: &Value, args: &Args) -> Result<usize, Value> {
    match &request["top"] {
        Value::Null => Ok(args.top),
        v => v
            .as_u64()
            .map(|t| t as usize)
            .ok_or_else(|| fail("'top' must be a non-negative integer")),
    }
}

/// Parses an optional label vector: JSON numbers (0/1) or booleans.
fn bool_vector(value: &Value, n_rows: usize) -> Result<Vec<bool>, Value> {
    let items = value
        .as_array()
        .ok_or_else(|| fail("'u' must be an array of 0/1 or booleans"))?;
    if items.len() != n_rows {
        return Err(fail(format!(
            "'u' has {} entries, dataset has {n_rows} rows",
            items.len()
        )));
    }
    items
        .iter()
        .map(|v| match (v.as_bool(), v.as_f64()) {
            (Some(b), _) => Ok(b),
            (None, Some(x)) if x == 0.0 || x == 1.0 => Ok(x == 1.0),
            _ => Err(fail("'u' entries must be 0/1 or booleans")),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Request dispatch

fn handle_request(
    state: &mut ServeState,
    args: &Args,
    parsed: &Result<Value, String>,
) -> (Value, bool) {
    let request = match parsed {
        Ok(v) => v,
        Err(e) => return (fail(e.clone()), false),
    };
    let op = match request["op"].as_str() {
        Some(op) => op.to_string(),
        None => return (fail("'op' (string) is required"), false),
    };
    let response = match op.as_str() {
        "register" => handle_register(state, args, request),
        "mine" => handle_mine(state, args, request),
        "query" => handle_query(state, args, request),
        "stats" => Ok(handle_stats(state)),
        "metrics" => handle_metrics(state, request),
        "trace" => handle_trace(state, request),
        // Deliberate fault drill: proves panic containment end to end.
        "panic" => panic!("panic op requested"),
        "shutdown" => return (ok("shutdown", vec![]), true),
        other => Err(fail(format!("unknown op '{other}'"))),
    };
    (response.unwrap_or_else(|e| e), false)
}

/// The `stats` reply. Every counter is read back from the obs registry
/// — the same store `metrics` renders — so the two views cannot
/// diverge; only the structural gauges (dataset/cache occupancy) come
/// from the state directly.
fn handle_stats(state: &ServeState) -> Value {
    let reg = &state.plane;
    ok(
        "stats",
        vec![
            ("datasets", num(state.datasets.len() as u64)),
            ("cached_lattices", num(state.cache.len() as u64)),
            ("resident_bytes", num(state.cache.resident_bytes())),
            ("capacity_bytes", num(state.cache.capacity_bytes())),
            ("requests", num(reg.counter_value("serve.requests"))),
            ("failures", num(reg.counter_value("serve.failures"))),
            ("panics", num(reg.counter_value("serve.panics"))),
            ("timeouts", num(reg.counter_value("serve.timeouts"))),
            ("quarantines", num(reg.counter_value("serve.quarantines"))),
            (
                "persist_failures",
                num(reg.counter_value("serve.persist_failures")),
            ),
            ("io_retries", num(reg.counter_value("artifact.io_retries"))),
            (
                "cache_hits",
                num(reg.counter_value("divexplorer.cache.hit")),
            ),
            (
                "cache_misses",
                num(reg.counter_value("divexplorer.cache.miss")),
            ),
            (
                "cache_evictions",
                num(reg.counter_value("divexplorer.cache.eviction")),
            ),
        ],
    )
}

/// The `metrics` reply: the registry as a Prometheus text exposition
/// (default), or as a machine-friendly JSON digest with
/// `"format":"json"`.
fn handle_metrics(state: &ServeState, request: &Value) -> Result<Value, Value> {
    let snap = state.plane.snapshot();
    match str_field(request, "format").as_deref() {
        None | Some("prometheus") => Ok(ok(
            "metrics",
            vec![
                ("format", text("prometheus")),
                ("body", text(obs::export::prometheus(&snap))),
            ],
        )),
        Some("json") => {
            let counters = Value::Object(
                snap.counters
                    .iter()
                    .map(|(name, v)| (name.clone(), num(*v)))
                    .collect(),
            );
            let latencies = Value::Object(
                snap.latencies
                    .iter()
                    .map(|(op, h)| {
                        let max = h.max().unwrap_or(0);
                        (
                            op.clone(),
                            obj(vec![
                                ("count", num(h.count())),
                                ("p50_le_us", num(h.quantile_le(0.50).unwrap_or(max))),
                                ("p95_le_us", num(h.quantile_le(0.95).unwrap_or(max))),
                                ("p99_le_us", num(h.quantile_le(0.99).unwrap_or(max))),
                                ("max_us", num(max)),
                            ]),
                        )
                    })
                    .collect(),
            );
            Ok(ok(
                "metrics",
                vec![
                    ("format", text("json")),
                    ("counters", counters),
                    ("latencies", latencies),
                    ("open_requests", num(snap.open_requests)),
                ],
            ))
        }
        Some(other) => Err(fail(format!(
            "unknown metrics format '{other}' (want 'prometheus' or 'json')"
        ))),
    }
}

/// The `trace` reply: the flight recorder's retained traces (or one
/// request's, with `"req":N`) rendered as NDJSON in `body`.
fn handle_trace(state: &ServeState, request: &Value) -> Result<Value, Value> {
    match &request["req"] {
        Value::Null => {
            let traces = state.plane.traces();
            Ok(ok(
                "trace",
                vec![
                    ("retained", num(traces.len() as u64)),
                    ("evicted", num(state.plane.evicted())),
                    (
                        "body",
                        text(
                            traces
                                .iter()
                                .map(obs::RequestTrace::render_ndjson)
                                .collect::<String>(),
                        ),
                    ),
                ],
            ))
        }
        v => {
            let id = v
                .as_u64()
                .ok_or_else(|| fail("'req' must be a request id (non-negative integer)"))?;
            let trace = state.plane.trace_of(id).ok_or_else(|| {
                fail(format!(
                    "request {id} is not in the flight recorder (never seen or evicted)"
                ))
            })?;
            Ok(ok(
                "trace",
                vec![
                    ("req", num(id)),
                    ("events", num(trace.events.len() as u64)),
                    ("body", text(trace.render_ndjson())),
                ],
            ))
        }
    }
}

fn handle_register(state: &mut ServeState, args: &Args, request: &Value) -> Result<Value, Value> {
    let name = require(request, "name")?;
    let registered = if let Some(path) = str_field(request, "artifact") {
        // A persisted dataset artifact: decoding re-validates checksum,
        // schema and the one-hot invariant.
        let ds =
            artifact::load_dataset(Path::new(&path)).map_err(|e| fail(format!("{path}: {e}")))?;
        Registered {
            data: ds.data,
            v: ds.v,
            u: ds.u,
            hash: ds.hash,
        }
    } else {
        let path = require(request, "path")?;
        let mut csv_args = args.clone();
        csv_args.label = require(request, "label")?;
        csv_args.pred = require(request, "pred")?;
        match &request["bins"] {
            Value::Null => {}
            v => {
                csv_args.bins = v
                    .as_u64()
                    .ok_or_else(|| fail("'bins' must be a non-negative integer"))?
                    as usize;
            }
        }
        let content = std::fs::read_to_string(&path).map_err(|e| fail(format!("{path}: {e}")))?;
        let prepared = prepare(&content, &csv_args).map_err(|e| fail(e.to_string()))?;
        let hash = artifact::dataset_hash(&prepared.data);
        Registered {
            data: prepared.data,
            v: prepared.v,
            u: prepared.u,
            hash,
        }
    };
    let rows = registered.data.n_rows();
    let hash = registered.hash;
    state.datasets.insert(name.clone(), registered);
    Ok(ok(
        "register",
        vec![
            ("name", text(name)),
            ("rows", num(rows as u64)),
            ("hash", text(format!("{hash:016x}"))),
        ],
    ))
}

/// The per-request mining/recount budget: the CLI-wide budget, with the
/// per-request deadline (`--request-timeout-ms`) layered on top.
fn request_budget(args: &Args) -> fpm::Budget {
    let mut budget = budget_from_args(args);
    if let Some(ms) = args.request_timeout_ms {
        budget = budget.with_timeout(std::time::Duration::from_millis(ms));
    }
    budget
}

/// Maps a truncation to a soft error, counting deadline expiries.
fn truncation_failure(reason: TruncationReason, what: &str) -> Value {
    if matches!(
        reason,
        TruncationReason::Timeout | TruncationReason::Cancelled
    ) {
        obs::counter("serve.timeouts", 1);
        fail(format!(
            "request deadline expired during {what} ({reason}); raise \
             --request-timeout-ms or the support threshold"
        ))
    } else {
        fail(format!(
            "{what} truncated ({reason}); refusing to serve a partial lattice"
        ))
    }
}

/// Moves a poisoned registry artifact aside and records the recovery.
/// Never fails the request: if even the rename fails, the warning says
/// so and the rebuild proceeds regardless.
fn quarantine_artifact(path: &Path, why: &str, warnings: &mut Vec<String>) {
    obs::counter("serve.quarantines", 1);
    match artifact::quarantine(&DiskIo, path) {
        Ok(dest) => warnings.push(format!(
            "{}: {why}; quarantined to {} and re-mining",
            path.display(),
            dest.display()
        )),
        Err(e) => warnings.push(format!(
            "{}: {why}; quarantine rename failed ({e}); re-mining anyway",
            path.display()
        )),
    }
}

/// The mine-or-load path shared by `mine` and `query`: cache, then the
/// on-disk registry, then a cold mine (written through to disk when a
/// registry directory is configured). A poisoned registry artifact is
/// quarantined and transparently rebuilt; every recovery step lands in
/// `warnings`.
fn ensure_lattice(
    state: &mut ServeState,
    args: &Args,
    request: &Value,
    name: &str,
    warnings: &mut Vec<String>,
) -> Result<(Arc<ItemsetArena<()>>, &'static str, f64), Value> {
    let support = support_field(request, args)?;
    let knobs = scale_knobs(request, args)?;
    let engine = str_field(request, "engine").unwrap_or_else(|| engine_label(args));
    let reg = state
        .datasets
        .get(name)
        .ok_or_else(|| fail(format!("dataset '{name}' is not registered")))?;
    let n = reg.data.n_rows();
    let params = fpm::MiningParams::with_min_support_fraction(support, n);
    let cache_key = CacheKey {
        dataset_hash: reg.hash,
        min_support_count: params.min_support_count,
        engine: engine.clone(),
        max_len: None,
    };
    if let Some(arena) = state.cache.get(&cache_key) {
        return Ok((arena, "cache", support));
    }
    let arena_key = ArenaKey {
        dataset_hash: reg.hash,
        min_support_count: params.min_support_count,
        max_len: None,
        engine: engine.clone(),
        n_rows: n as u64,
    };
    if let Some(dir) = &state.dir {
        let path = dir.join(artifact::arena_file_name(&arena_key));
        if DiskIo.exists(&path) {
            // A poisoned registry file (bad checksum, truncation,
            // version skew, key mismatch) is quarantined and rebuilt;
            // the service never recounts unverified bytes, but it also
            // never lets one bad file poison the session.
            match artifact::load_arena(&path) {
                Ok((loaded_key, candidates)) if loaded_key == arena_key => {
                    let arena = Arc::new(candidates);
                    state.cache.insert(cache_key, Arc::clone(&arena));
                    return Ok((arena, "artifact", support));
                }
                Ok(_) => quarantine_artifact(
                    &path,
                    "artifact key does not match its file name",
                    warnings,
                ),
                Err(e) => quarantine_artifact(&path, &e.to_string(), warnings),
            }
        }
    }
    let reg = &state.datasets[name];
    let algorithm = parse_engine(&engine).map_err(|e| fail(e.to_string()))?;
    // The scale knobs steer *how* the lattice is mined, never what it
    // contains — sharded/parallel/prefetched runs are bit-identical —
    // so they are deliberately absent from the cache and artifact keys.
    let mut explorer = DivExplorer::new(support)
        .with_algorithm(algorithm)
        .with_threads(knobs.threads)
        .with_prefetch(knobs.prefetch)
        .with_budget(request_budget(args));
    if let Some(k) = knobs.shards {
        explorer = explorer.with_shards(k);
    }
    let report = explorer
        .explore(&reg.data, &reg.v, &reg.u, &args.metrics)
        .map_err(|e| fail(e.to_string()))?;
    if let Some(reason) = report.completeness().truncation_reason() {
        return Err(truncation_failure(reason, "mining"));
    }
    let candidates = candidates_of(&report);
    if let Some(dir) = &state.dir {
        // Write-through persistence is best-effort: a full or failing
        // disk degrades to serving from memory, never to a failed
        // request. The atomic-write protocol guarantees the registry
        // file is all-old or all-new even if we crash right here.
        let path = dir.join(artifact::arena_file_name(&arena_key));
        let persisted = DiskIo
            .create_dir_all(dir)
            .map_err(artifact::ArtifactError::from)
            .and_then(|()| artifact::save_arena(&path, &arena_key, &candidates));
        if let Err(e) = persisted {
            obs::counter("serve.persist_failures", 1);
            warnings.push(format!(
                "artifact registry write failed ({e}); serving from memory only"
            ));
        }
    }
    let arena = Arc::new(candidates);
    state.cache.insert(cache_key, Arc::clone(&arena));
    Ok((arena, "mined", support))
}

/// Appends the warnings array to a successful response, if any.
fn with_warnings(mut response: Value, warnings: Vec<String>) -> Value {
    if !warnings.is_empty() {
        if let Value::Object(fields) = &mut response {
            fields.push((
                "warnings".to_string(),
                Value::Array(warnings.into_iter().map(Value::String).collect()),
            ));
        }
    }
    response
}

fn handle_mine(state: &mut ServeState, args: &Args, request: &Value) -> Result<Value, Value> {
    let name = require(request, "name")?;
    let mut warnings = Vec::new();
    let (arena, source, support) = ensure_lattice(state, args, request, &name, &mut warnings)?;
    Ok(with_warnings(
        ok(
            "mine",
            vec![
                ("name", text(name)),
                ("patterns", num(arena.len() as u64)),
                ("support", Value::Number(support)),
                ("source", text(source)),
            ],
        ),
        warnings,
    ))
}

fn handle_query(state: &mut ServeState, args: &Args, request: &Value) -> Result<Value, Value> {
    let name = require(request, "name")?;
    // Validate every request field before ensure_lattice: a malformed
    // request must fail fast without side effects (no mine, no
    // quarantine, no registry write).
    let top = top_field(request, args)?;
    let knobs = scale_knobs(request, args)?;
    let metrics = match str_field(request, "metric") {
        Some(spec) => parse_metrics(&spec).map_err(|e| fail(e.to_string()))?,
        None => args.metrics.clone(),
    };
    let n_rows = state
        .datasets
        .get(&name)
        .map(|reg| reg.data.n_rows())
        .ok_or_else(|| fail(format!("dataset '{name}' is not registered")))?;
    let u_override = if request["u"].is_null() {
        None
    } else {
        Some(bool_vector(&request["u"], n_rows)?)
    };
    let mut warnings = Vec::new();
    let (arena, source, support) = ensure_lattice(state, args, request, &name, &mut warnings)?;
    let reg = &state.datasets[&name];
    let u: &[bool] = u_override.as_deref().unwrap_or(&reg.u);

    // The warm path: one streaming recount against the shared lattice,
    // no mining phase (see DESIGN.md §6g). The scale knobs drive the
    // recount pipeline too — same tallies, different wall clock.
    let mut explorer = DivExplorer::new(support)
        .with_threads(knobs.threads)
        .with_prefetch(knobs.prefetch)
        .with_budget(request_budget(args));
    if let Some(k) = knobs.shards {
        explorer = explorer.with_shards(k);
    }
    let report = explorer
        .from_artifact(&reg.data, &arena, &reg.v, u, &metrics)
        .map_err(|e| fail(e.to_string()))?;
    if let Some(reason) = report.completeness().truncation_reason() {
        // The recount engine emits nothing when cut mid-phase, so a
        // truncated recount must fail soft — not return empty results
        // that look like "no divergence anywhere".
        return Err(truncation_failure(reason, "recount"));
    }

    let mut rows = Vec::new();
    for idx in report.ranked(0, SortBy::Divergence).into_iter().take(top) {
        rows.push(obj(vec![
            ("itemset", text(report.display_itemset(report.items(idx)))),
            ("support", Value::Number(report.support_fraction(idx))),
            ("divergence", Value::Number(report.divergence(idx, 0))),
            ("t", Value::Number(report.t_statistic(idx, 0))),
        ]));
    }
    Ok(with_warnings(
        ok(
            "query",
            vec![
                ("name", text(name)),
                ("metric", text(metrics[0].short_name())),
                ("dataset_rate", Value::Number(report.dataset_rate(0))),
                ("patterns", num(report.len() as u64)),
                ("source", text(source)),
                ("results", Value::Array(rows)),
            ],
        ),
        warnings,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Command;

    const CSV: &str = "\
grp,other,y,yhat
a,x,0,1
a,y,0,1
a,x,0,1
a,y,0,0
b,x,0,0
b,y,0,0
b,x,0,0
b,y,0,1
";

    fn serve_args(artifact_dir: &str) -> Args {
        let mut argv = vec!["serve".to_string()];
        if !artifact_dir.is_empty() {
            argv.extend(["--artifact".to_string(), artifact_dir.to_string()]);
        }
        let args = Args::parse(argv).unwrap();
        assert_eq!(args.command, Command::Serve);
        args
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cli-serve-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Drives the loop over in-memory NDJSON and parses each response,
    /// also returning the captured diagnostic (trace-dump) stream.
    fn drive_with_diag(args: &Args, requests: &[&str]) -> (Vec<Value>, String) {
        let input = requests.join("\n");
        let mut out = Vec::new();
        let mut diag = Vec::new();
        serve_loop_with_diag(args, input.as_bytes(), &mut out, &mut diag).unwrap();
        let responses = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|line| serde_json::from_str(line).unwrap())
            .collect();
        (responses, String::from_utf8(diag).unwrap())
    }

    /// Drives the loop over in-memory NDJSON and parses each response.
    fn drive(args: &Args, requests: &[&str]) -> Vec<Value> {
        drive_with_diag(args, requests).0
    }

    fn register_line(csv_path: &std::path::Path) -> String {
        format!(
            r#"{{"op":"register","name":"toy","path":"{}","label":"y","pred":"yhat"}}"#,
            csv_path.display()
        )
    }

    #[test]
    fn register_mine_query_roundtrip() {
        let dir = temp_dir("roundtrip");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, CSV).unwrap();
        let register = register_line(&csv_path);
        let responses = drive(
            &serve_args(""),
            &[
                &register,
                r#"{"op":"mine","name":"toy","support":0.25}"#,
                r#"{"op":"mine","name":"toy","support":0.25}"#,
                r#"{"op":"query","name":"toy","support":0.25,"top":3}"#,
                r#"{"op":"stats"}"#,
                r#"{"op":"shutdown"}"#,
            ],
        );
        assert_eq!(responses.len(), 6);
        for r in &responses {
            assert_eq!(r["ok"].as_bool(), Some(true), "{r:?}");
        }
        assert_eq!(responses[0]["rows"].as_u64(), Some(8));
        assert_eq!(responses[1]["source"].as_str(), Some("mined"));
        assert_eq!(responses[2]["source"].as_str(), Some("cache"));
        let results = responses[3]["results"].as_array().unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0]["itemset"].as_str(), Some("grp=a, other=x"));
        assert!((results[0]["divergence"].as_f64().unwrap() - 0.5).abs() < 1e-9);
        assert_eq!(responses[4]["cached_lattices"].as_u64(), Some(1));
        assert_eq!(responses[4]["requests"].as_u64(), Some(5));
        assert_eq!(responses[4]["failures"].as_u64(), Some(0));
        assert_eq!(responses[4]["panics"].as_u64(), Some(0));
        assert_eq!(responses[4]["quarantines"].as_u64(), Some(0));
        assert!(responses[4]["cache_hits"].as_u64().unwrap() >= 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn query_with_an_inline_label_vector_recounts_without_remining() {
        let dir = temp_dir("relabel");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, CSV).unwrap();
        let register = register_line(&csv_path);
        // A second query predicts positive everywhere: every subgroup's
        // FPR equals the overall rate, so all divergences collapse to
        // zero — while the lattice is served from cache, not re-mined.
        let responses = drive(
            &serve_args(""),
            &[
                &register,
                r#"{"op":"query","name":"toy","support":0.25,"top":1}"#,
                r#"{"op":"query","name":"toy","support":0.25,"top":1,"u":[1,1,1,1,1,1,1,1]}"#,
            ],
        );
        assert_eq!(responses[1]["source"].as_str(), Some("mined"));
        assert_eq!(responses[2]["source"].as_str(), Some("cache"));
        assert_eq!(responses[1]["patterns"], responses[2]["patterns"]);
        let before = responses[1]["results"][0]["divergence"].as_f64().unwrap();
        let after = responses[2]["results"][0]["divergence"].as_f64().unwrap();
        assert!((before - 0.5).abs() < 1e-9, "{before}");
        assert!(after.abs() < 1e-9, "{after}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lattices_persist_to_the_artifact_registry_across_restarts() {
        let dir = temp_dir("registry");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, CSV).unwrap();
        let registry = dir.join("artifacts");
        let args = serve_args(registry.to_str().unwrap());
        let register = register_line(&csv_path);
        let mine = r#"{"op":"mine","name":"toy","support":0.25}"#;
        let first = drive(&args, &[&register, mine]);
        assert_eq!(first[1]["source"].as_str(), Some("mined"));
        // A fresh loop (fresh cache) finds the persisted artifact.
        let second = drive(&args, &[&register, mine]);
        assert_eq!(second[1]["source"].as_str(), Some("artifact"));
        assert_eq!(second[1]["patterns"], first[1]["patterns"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn register_accepts_a_dataset_artifact() {
        let dir = temp_dir("from-artifact");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, CSV).unwrap();
        // First loop registers from CSV and we persist the dataset via
        // the artifact API; second loop registers from the artifact.
        let mut csv_args = serve_args("");
        csv_args.label = "y".to_string();
        csv_args.pred = "yhat".to_string();
        let prepared = prepare(CSV, &csv_args).unwrap();
        let ds_path = dir.join("toy.dxd");
        artifact::save_dataset(&ds_path, &prepared.data, &prepared.v, &prepared.u).unwrap();

        let register = format!(
            r#"{{"op":"register","name":"toy","artifact":"{}"}}"#,
            ds_path.display()
        );
        let responses = drive(
            &serve_args(""),
            &[
                &register,
                r#"{"op":"query","name":"toy","support":0.25,"top":1}"#,
            ],
        );
        assert_eq!(responses[0]["ok"].as_bool(), Some(true));
        assert_eq!(responses[0]["rows"].as_u64(), Some(8));
        assert_eq!(
            responses[1]["results"][0]["itemset"].as_str(),
            Some("grp=a, other=x")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_requests_fail_soft_and_the_loop_continues() {
        let responses = drive(
            &serve_args(""),
            &[
                "this is not json",
                r#"{"no_op_field":1}"#,
                r#"{"op":"launch"}"#,
                r#"{"op":"mine","name":"ghost"}"#,
                r#"{"op":"register","name":"x"}"#,
                r#"{"op":"stats"}"#,
            ],
        );
        assert_eq!(responses.len(), 6);
        for r in &responses[..5] {
            assert_eq!(r["ok"].as_bool(), Some(false), "{r:?}");
            assert!(r["error"].as_str().is_some());
        }
        assert_eq!(responses[5]["ok"].as_bool(), Some(true));
        assert_eq!(responses[5]["failures"].as_u64(), Some(5));
    }

    #[test]
    fn a_malformed_support_field_is_rejected_not_defaulted() {
        let dir = temp_dir("bad-support");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, CSV).unwrap();
        let register = register_line(&csv_path);
        // A string support must NOT silently mine at the CLI default
        // (0.05) — that would serve tallies at a threshold the caller
        // never asked for.
        let responses = drive(
            &serve_args(""),
            &[
                &register,
                r#"{"op":"mine","name":"toy","support":"0.25"}"#,
                r#"{"op":"query","name":"toy","support":1.5}"#,
                r#"{"op":"query","name":"toy","support":0.25,"top":"three"}"#,
                r#"{"op":"mine","name":"toy","support":0.25}"#,
            ],
        );
        assert_eq!(responses[1]["ok"].as_bool(), Some(false));
        assert!(
            responses[1]["error"].as_str().unwrap().contains("support"),
            "{:?}",
            responses[1]
        );
        assert_eq!(responses[2]["ok"].as_bool(), Some(false));
        assert!(responses[2]["error"].as_str().unwrap().contains("(0, 1]"));
        assert_eq!(responses[3]["ok"].as_bool(), Some(false));
        assert!(responses[3]["error"].as_str().unwrap().contains("top"));
        // The loop continued and a well-formed request still succeeds.
        assert_eq!(responses[4]["ok"].as_bool(), Some(true));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scale_knob_fields_parse_strictly_and_keep_results_identical() {
        let dir = temp_dir("scale-knobs");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, CSV).unwrap();
        let register = register_line(&csv_path);
        // Malformed knobs are hard errors (no silent CLI-default
        // fallback, no side effects); well-formed knobs change the
        // execution pipeline but never the tallies.
        let responses = drive(
            &serve_args(""),
            &[
                &register,
                r#"{"op":"mine","name":"toy","support":0.25,"threads":"4"}"#,
                r#"{"op":"query","name":"toy","support":0.25,"shards":0}"#,
                r#"{"op":"query","name":"toy","support":0.25,"prefetch":1.5}"#,
                r#"{"op":"query","name":"toy","support":0.25,"top":3}"#,
                r#"{"op":"query","name":"toy","support":0.25,"top":3,"threads":4,"shards":3,"prefetch":2}"#,
                r#"{"op":"stats"}"#,
            ],
        );
        for (i, field) in [(1, "threads"), (2, "shards"), (3, "prefetch")] {
            assert_eq!(responses[i]["ok"].as_bool(), Some(false), "{i}");
            assert!(
                responses[i]["error"].as_str().unwrap().contains(field),
                "{:?}",
                responses[i]
            );
        }
        assert_eq!(
            responses[4]["ok"].as_bool(),
            Some(true),
            "{:?}",
            responses[4]
        );
        assert_eq!(
            responses[5]["ok"].as_bool(),
            Some(true),
            "{:?}",
            responses[5]
        );
        assert_eq!(responses[4]["patterns"], responses[5]["patterns"]);
        assert_eq!(responses[4]["results"], responses[5]["results"]);
        // The malformed-shards query must not have mined anything: the
        // first well-formed query is the one that reports "mined".
        assert_eq!(responses[4]["source"].as_str(), Some("mined"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_finite_statistics_serialize_as_null_not_a_crash() {
        // All-positive ground truth: FPR has no negatives to divide by,
        // so the dataset rate and every divergence are NaN. The reply
        // must sanitize them to null and the loop must keep serving.
        let degenerate = "\
grp,other,y,yhat
a,x,1,1
a,y,1,1
a,x,1,0
b,y,1,0
b,x,1,1
b,y,1,0
b,x,1,1
a,y,1,0
";
        let dir = temp_dir("nan");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, degenerate).unwrap();
        let register = register_line(&csv_path);
        let responses = drive(
            &serve_args(""),
            &[
                &register,
                r#"{"op":"query","name":"toy","support":0.25,"metric":"FPR","top":2}"#,
                r#"{"op":"stats"}"#,
            ],
        );
        assert_eq!(
            responses[1]["ok"].as_bool(),
            Some(true),
            "{:?}",
            responses[1]
        );
        assert!(
            responses[1]["dataset_rate"].is_null(),
            "NaN must become null: {:?}",
            responses[1]
        );
        assert_eq!(responses[2]["ok"].as_bool(), Some(true));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_malformed_query_fails_fast_without_mining() {
        let dir = temp_dir("fail-fast");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, CSV).unwrap();
        let register = register_line(&csv_path);
        // A wrong-length u vector must be rejected before any lattice
        // work: no mine, no cache entry, no registry side effects.
        let responses = drive(
            &serve_args(""),
            &[
                &register,
                r#"{"op":"query","name":"toy","support":0.25,"u":[1,0]}"#,
                r#"{"op":"stats"}"#,
            ],
        );
        assert_eq!(responses[1]["ok"].as_bool(), Some(false));
        assert!(responses[1]["error"].as_str().unwrap().contains("8 rows"));
        assert_eq!(responses[2]["cached_lattices"].as_u64(), Some(0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_panicking_handler_is_contained_and_counted() {
        let responses = drive(
            &serve_args(""),
            &[
                r#"{"op":"panic"}"#,
                r#"{"op":"panic"}"#,
                r#"{"op":"stats"}"#,
            ],
        );
        assert_eq!(responses.len(), 3);
        for r in &responses[..2] {
            assert_eq!(r["ok"].as_bool(), Some(false), "{r:?}");
            assert!(r["error"].as_str().unwrap().contains("panicked"), "{r:?}");
        }
        assert_eq!(responses[2]["ok"].as_bool(), Some(true));
        assert_eq!(responses[2]["panics"].as_u64(), Some(2));
        assert_eq!(responses[2]["failures"].as_u64(), Some(2));
    }

    #[test]
    fn an_expired_request_deadline_fails_soft_and_is_counted() {
        let dir = temp_dir("deadline");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, CSV).unwrap();
        let mut args = serve_args("");
        args.request_timeout_ms = Some(0);
        let register = register_line(&csv_path);
        let responses = drive(
            &args,
            &[
                &register,
                r#"{"op":"mine","name":"toy","support":0.25}"#,
                r#"{"op":"stats"}"#,
            ],
        );
        assert_eq!(responses[1]["ok"].as_bool(), Some(false));
        assert!(
            responses[1]["error"].as_str().unwrap().contains("deadline"),
            "{:?}",
            responses[1]
        );
        assert_eq!(responses[2]["ok"].as_bool(), Some(true));
        assert!(responses[2]["timeouts"].as_u64().unwrap() >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_stops_the_loop_before_later_requests() {
        let responses = drive(
            &serve_args(""),
            &[r#"{"op":"shutdown"}"#, r#"{"op":"stats"}"#],
        );
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0]["op"].as_str(), Some("shutdown"));
    }

    /// Flips one byte in the registry's persisted arena artifact.
    fn poison_registry_arena(registry: &std::path::Path) -> std::path::PathBuf {
        let arena_file = std::fs::read_dir(registry)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|x| x == "dxa"))
            .unwrap();
        let mut bytes = std::fs::read(&arena_file).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&arena_file, &bytes).unwrap();
        arena_file
    }

    #[test]
    fn a_tampered_registry_artifact_is_quarantined_and_rebuilt() {
        let dir = temp_dir("quarantine");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, CSV).unwrap();
        let registry = dir.join("artifacts");
        let args = serve_args(registry.to_str().unwrap());
        let register = register_line(&csv_path);
        let mine = r#"{"op":"mine","name":"toy","support":0.25}"#;
        let first = drive(&args, &[&register, mine]);
        let patterns = first[1]["patterns"].as_u64().unwrap();
        let arena_file = poison_registry_arena(&registry);

        // The poisoned artifact is quarantined, the lattice re-mined
        // and re-persisted — the request succeeds with a warning
        // instead of erroring the session.
        let responses = drive(&args, &[&register, mine, r#"{"op":"stats"}"#]);
        assert_eq!(
            responses[1]["ok"].as_bool(),
            Some(true),
            "{:?}",
            responses[1]
        );
        assert_eq!(responses[1]["source"].as_str(), Some("mined"));
        assert_eq!(responses[1]["patterns"].as_u64(), Some(patterns));
        let warnings = responses[1]["warnings"].as_array().unwrap();
        assert!(
            warnings[0].as_str().unwrap().contains("checksum mismatch"),
            "{warnings:?}"
        );
        assert!(warnings[0].as_str().unwrap().contains("quarantined"));
        assert_eq!(responses[2]["quarantines"].as_u64(), Some(1));

        // Forensics: the poisoned bytes moved aside; the registry slot
        // holds a fresh, valid artifact a later session loads cleanly.
        assert!(artifact::quarantine_path(&arena_file).exists());
        assert!(arena_file.exists(), "registry slot rebuilt");
        let third = drive(&args, &[&register, mine]);
        assert_eq!(third[1]["source"].as_str(), Some("artifact"));
        assert_eq!(third[1]["patterns"].as_u64(), Some(patterns));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_version_skewed_artifact_is_quarantined_and_rebuilt() {
        let dir = temp_dir("version-skew");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, CSV).unwrap();
        let registry = dir.join("artifacts");
        let args = serve_args(registry.to_str().unwrap());
        let register = register_line(&csv_path);
        let mine = r#"{"op":"mine","name":"toy","support":0.25}"#;
        drive(&args, &[&register, mine]);

        // Bump the format version and fix up the trailing checksum so
        // only the version differs — a file from a future release.
        let arena_file = std::fs::read_dir(&registry)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|x| x == "dxa"))
            .unwrap();
        let mut bytes = std::fs::read(&arena_file).unwrap();
        bytes[4..8].copy_from_slice(&(artifact::FORMAT_VERSION + 9).to_le_bytes());
        let end = bytes.len() - 8;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in &bytes[..end] {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        bytes[end..].copy_from_slice(&h.to_le_bytes());
        std::fs::write(&arena_file, &bytes).unwrap();

        let responses = drive(&args, &[&register, mine]);
        assert_eq!(
            responses[1]["ok"].as_bool(),
            Some(true),
            "{:?}",
            responses[1]
        );
        let warnings = responses[1]["warnings"].as_array().unwrap();
        assert!(
            warnings[0]
                .as_str()
                .unwrap()
                .contains("unsupported artifact version"),
            "{warnings:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_exposition_is_valid_prometheus_with_latency_quantiles() {
        let dir = temp_dir("metrics");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, CSV).unwrap();
        let register = register_line(&csv_path);
        let responses = drive(
            &serve_args(""),
            &[
                &register,
                r#"{"op":"mine","name":"toy","support":0.25}"#,
                r#"{"op":"query","name":"toy","support":0.25,"top":1}"#,
                r#"{"op":"metrics"}"#,
            ],
        );
        let metrics = &responses[3];
        assert_eq!(metrics["ok"].as_bool(), Some(true), "{metrics:?}");
        assert_eq!(metrics["format"].as_str(), Some("prometheus"));
        let body = metrics["body"].as_str().unwrap();
        obs::export::validate_prometheus(body).unwrap();
        // Session counters, per-op latency histograms, and the three
        // quantile gauges the issue demands.
        assert!(body.contains("divex_serve_requests_total 4"), "{body}");
        assert!(
            body.contains("divex_request_duration_us_bucket{op=\"mine\",le=\"+Inf\"} 1"),
            "{body}"
        );
        for q in ["p50", "p95", "p99"] {
            assert!(
                body.contains(&format!("divex_request_duration_us_{q}{{op=\"query\"}}")),
                "missing {q}: {body}"
            );
        }
        // Mining spans landed in the same registry.
        assert!(
            body.contains("divex_span_total{span=\"serve.request\"}"),
            "{body}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_and_metrics_derive_from_one_registry_and_cannot_diverge() {
        // The satellite regression: after mixed traffic (successes,
        // failures, a panic, a timeout), `stats` and `metrics` must
        // report the *same* fault counters — and consecutive replies
        // must show `requests` advancing by exactly one, proving both
        // read one live ledger rather than two hand-rolled ones.
        let dir = temp_dir("one-registry");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, CSV).unwrap();
        let register = register_line(&csv_path);
        let responses = drive(
            &serve_args(""),
            &[
                &register,
                r#"{"op":"mine","name":"toy","support":0.25}"#,
                r#"{"op":"launch"}"#,
                r#"{"op":"panic"}"#,
                r#"{"op":"stats"}"#,
                r#"{"op":"metrics","format":"json"}"#,
                r#"{"op":"stats"}"#,
            ],
        );
        let (stats_a, metrics, stats_b) = (&responses[4], &responses[5], &responses[6]);
        assert_eq!(metrics["ok"].as_bool(), Some(true), "{metrics:?}");
        let counters = &metrics["counters"];
        for (stats_key, counter_key) in [
            ("failures", "serve.failures"),
            ("panics", "serve.panics"),
            ("timeouts", "serve.timeouts"),
            ("quarantines", "serve.quarantines"),
            ("persist_failures", "serve.persist_failures"),
        ] {
            let in_stats = stats_a[stats_key].as_u64().unwrap();
            let in_metrics = counters[counter_key].as_u64().unwrap_or(0);
            assert_eq!(in_stats, in_metrics, "{stats_key} diverged");
            assert_eq!(stats_b[stats_key].as_u64().unwrap(), in_stats);
        }
        assert_eq!(stats_a["panics"].as_u64(), Some(1));
        assert_eq!(stats_a["failures"].as_u64(), Some(2));
        // One shared monotone requests counter: each reply sees itself.
        assert_eq!(stats_a["requests"].as_u64(), Some(5));
        assert_eq!(counters["serve.requests"].as_u64(), Some(6));
        assert_eq!(stats_b["requests"].as_u64(), Some(7));
        // Per-op latency histograms cover every op seen so far.
        for op in ["register", "mine", "unknown", "panic", "stats"] {
            assert!(
                metrics["latencies"][op]["count"].as_u64().unwrap() >= 1,
                "no latency for {op}: {metrics:?}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_op_returns_the_requests_complete_span_tree() {
        let dir = temp_dir("trace-op");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, CSV).unwrap();
        let register = register_line(&csv_path);
        let responses = drive(
            &serve_args(""),
            &[
                &register,
                r#"{"op":"mine","name":"toy","support":0.25}"#,
                r#"{"op":"trace","req":2}"#,
                r#"{"op":"trace"}"#,
                r#"{"op":"trace","req":99}"#,
            ],
        );
        let one = &responses[2];
        assert_eq!(one["ok"].as_bool(), Some(true), "{one:?}");
        let body = one["body"].as_str().unwrap();
        assert!(
            body.contains(r#""ev":"request_start","op":"mine""#),
            "{body}"
        );
        assert!(body.contains(r#""ev":"request_end""#), "{body}");
        // The mine request's span tree is attributed to it, down to the
        // mining engine spans, with matched enter/exit pairs.
        assert!(body.contains(r#""span":"serve.request""#), "{body}");
        assert!(body.contains(r#""span":"explore.mine""#), "{body}");
        let enters = body.matches(r#""ev":"span_enter""#).count();
        let exits = body.matches(r#""ev":"span_exit""#).count();
        assert!(enters >= 2, "{body}");
        assert_eq!(enters, exits, "unbalanced span tree: {body}");
        for line in body.lines() {
            assert!(line.contains("\"req\":2"), "foreign event in trace: {line}");
        }
        let all = &responses[3];
        assert_eq!(all["retained"].as_u64(), Some(4), "{all:?}");
        assert!(all["body"].as_str().unwrap().contains(r#""op":"register""#));
        let missing = &responses[4];
        assert_eq!(missing["ok"].as_bool(), Some(false));
        assert!(missing["error"]
            .as_str()
            .unwrap()
            .contains("flight recorder"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flagged_requests_dump_their_traces_to_the_diagnostic_stream() {
        // --slow-ms 0 flags every request; panics and timeouts always
        // dump. Each dump must carry the flagged request's own span
        // tree, complete (request_end present) even across a panic.
        let dir = temp_dir("dump");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, CSV).unwrap();
        let mut args = serve_args("");
        args.slow_ms = Some(0);
        let register = register_line(&csv_path);
        let (responses, diag) = drive_with_diag(
            &args,
            &[&register, r#"{"op":"panic"}"#, r#"{"op":"stats"}"#],
        );
        assert_eq!(responses.len(), 3);
        assert!(diag.contains("request 1 flagged (slow"), "{diag}");
        assert!(diag.contains("request 2 flagged (panic"), "{diag}");
        assert!(
            diag.contains(r#""req":2,"ev":"request_start","op":"panic""#),
            "{diag}"
        );
        assert!(
            diag.contains(r#""req":2,"ev":"request_end","op":"panic""#),
            "{diag}"
        );

        // A timeout dump, without --slow-ms in the way.
        let mut args = serve_args("");
        args.request_timeout_ms = Some(0);
        let (responses, diag) = drive_with_diag(
            &args,
            &[&register, r#"{"op":"mine","name":"toy","support":0.25}"#],
        );
        assert_eq!(responses[1]["ok"].as_bool(), Some(false));
        assert!(diag.contains("request 2 flagged (timeout"), "{diag}");
        assert!(diag.contains(r#""name":"serve.timeouts""#), "{diag}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_file_snapshots_are_written_atomically_and_validate() {
        let dir = temp_dir("metrics-file");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, CSV).unwrap();
        let metrics_path = dir.join("metrics.prom");
        let mut args = serve_args("");
        args.metrics_file = Some(metrics_path.display().to_string());
        let register = register_line(&csv_path);
        drive(
            &args,
            &[
                &register,
                r#"{"op":"mine","name":"toy","support":0.25}"#,
                r#"{"op":"shutdown"}"#,
            ],
        );
        let body = std::fs::read_to_string(&metrics_path).unwrap();
        obs::export::validate_prometheus(&body).unwrap();
        // The final forced snapshot saw the whole session.
        assert!(body.contains("divex_serve_requests_total 3"), "{body}");
        assert!(
            body.contains("divex_request_duration_us_count{op=\"mine\"} 1"),
            "{body}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sanitize_nulls_non_finite_numbers_recursively() {
        let mut v = obj(vec![
            ("a", Value::Number(f64::NAN)),
            (
                "b",
                Value::Array(vec![
                    Value::Number(f64::INFINITY),
                    Value::Number(1.5),
                    obj(vec![("c", Value::Number(f64::NEG_INFINITY))]),
                ]),
            ),
        ]);
        sanitize(&mut v);
        assert!(v["a"].is_null());
        assert!(v["b"][0].is_null());
        assert_eq!(v["b"][1].as_f64(), Some(1.5));
        assert!(v["b"][2]["c"].is_null());
    }
}
