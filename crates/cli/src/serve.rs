//! `serve`: a resident, fault-tolerant analysis service over NDJSON.
//!
//! One request per line on stdin, one JSON response per line on stdout.
//! The service keeps registered datasets in memory and mined lattices in
//! a byte-bounded LRU [`ArenaCache`]; with `--artifact DIR` it also
//! reads and writes the on-disk artifact registry, so a lattice is
//! mined at most once across restarts. Queries recount against the
//! cached lattice — optionally under a *new* prediction vector supplied
//! inline — so serving a fresh model's analysis costs one streaming
//! recount, never a re-mine.
//!
//! # Protocol
//!
//! ```text
//! {"op":"register","name":"d1","path":"data.csv","label":"y","pred":"yhat"}
//! {"op":"register","name":"d1","artifact":"dir/d1.dxd"}
//! {"op":"mine","name":"d1","support":0.1}
//! {"op":"query","name":"d1","support":0.1,"metric":"FPR","top":5}
//! {"op":"query","name":"d1","support":0.1,"u":[0,1,1,0]}
//! {"op":"stats"}
//! {"op":"panic"}
//! {"op":"shutdown"}
//! ```
//!
//! Every response carries `"ok": true|false`; a malformed line or an
//! unknown op yields `{"ok":false,"error":...}` and the loop continues.
//! Only `shutdown` (or end of input) ends the loop.
//!
//! # Fault model (see DESIGN.md §6h)
//!
//! The loop is built so that no single request — malformed, poisoned,
//! panicking or slow — can take the service down or wedge it:
//!
//! - **Panic isolation.** Each request runs under `catch_unwind`; a
//!   panicking handler produces `{"ok":false,...}` and the loop
//!   continues. `{"op":"panic"}` is a deliberate fault drill that
//!   exercises exactly this path.
//! - **Deadlines.** `--request-timeout-ms MS` wires a per-request
//!   wall-clock budget into the mining/recount [`fpm::Budget`]
//!   machinery; an over-budget request fails soft with a deadline
//!   message instead of holding the loop.
//! - **Quarantine + rebuild.** A corrupt, truncated or version-skewed
//!   registry artifact is renamed to `*.quarantine`, the request falls
//!   back cache → registry → cold mine, and the rebuilt lattice is
//!   re-persisted (crash-safely: temp file + fsync + atomic rename).
//!   The response carries a `warnings` array describing the recovery.
//! - **Soft persistence.** A failing registry write degrades to
//!   serving from memory with a warning, never to a failed request.
//!
//! `stats` reports the session's counters for all of the above:
//! `requests`, `failures`, `panics`, `timeouts`, `quarantines`,
//! `persist_failures`, `io_retries`, and the cache's
//! `cache_hits`/`cache_misses`/`cache_evictions`.

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use datasets::artifact::{self, ArenaKey};
use datasets::artifact_io::{self, ArtifactIo, DiskIo};
use divexplorer::{ArenaCache, CacheKey, DiscreteDataset, DivExplorer, SortBy};
use fpm::{ItemsetArena, TruncationReason};
use serde_json::Value;

use crate::artifacts::{candidates_of, engine_label};
use crate::{budget_from_args, parse_engine, parse_metrics, prepare, Args, CliError};

/// Default lattice-cache budget: 256 MiB of resident arenas.
const DEFAULT_CACHE_BYTES: u64 = 256 << 20;

struct Registered {
    data: DiscreteDataset,
    v: Vec<bool>,
    u: Vec<bool>,
    hash: u64,
}

/// Per-session fault and traffic counters, reported by `stats`.
#[derive(Debug, Default)]
struct ServeStats {
    requests: u64,
    failures: u64,
    panics: u64,
    timeouts: u64,
    quarantines: u64,
    persist_failures: u64,
}

struct ServeState {
    /// On-disk artifact registry, if `--artifact DIR` was given.
    dir: Option<PathBuf>,
    datasets: HashMap<String, Registered>,
    cache: ArenaCache,
    stats: ServeStats,
    /// [`artifact_io::retries_total`] at loop start, so `stats` reports
    /// this session's transient-IO retries, not the process total.
    retries_base: u64,
}

/// Runs the request loop until `shutdown` or end of input. Exposed over
/// generic reader/writer so tests drive it in-process.
pub fn serve_loop<R: BufRead, W: Write>(args: &Args, input: R, mut out: W) -> Result<(), CliError> {
    let mut state = ServeState {
        dir: (!args.artifact.is_empty()).then(|| PathBuf::from(&args.artifact)),
        datasets: HashMap::new(),
        cache: ArenaCache::new(DEFAULT_CACHE_BYTES),
        stats: ServeStats::default(),
        retries_base: artifact_io::retries_total(),
    };
    for line in input.lines() {
        let line = line.map_err(|e| CliError::Input(format!("request stream: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        state.stats.requests += 1;
        // Per-request isolation: a panicking handler is contained here
        // and becomes a soft failure; the loop (and every registered
        // dataset and cached lattice) survives.
        let (mut response, shutdown) = {
            let _span = obs::span("serve.request");
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                handle_request(&mut state, args, &line)
            }));
            match outcome {
                Ok(reply) => reply,
                Err(payload) => {
                    state.stats.panics += 1;
                    obs::counter("serve.panics", 1);
                    (
                        fail(format!(
                            "request handler panicked: {}; the service continues",
                            panic_message(&payload)
                        )),
                        false,
                    )
                }
            }
        };
        if response["ok"].as_bool() != Some(true) {
            state.stats.failures += 1;
        }
        // A NaN or infinite statistic (a degenerate slice's divergence)
        // must not poison the response stream: non-finite floats become
        // JSON null, and serialization failure is itself a soft error.
        sanitize(&mut response);
        let text = serde_json::to_string(&response)
            .unwrap_or_else(|_| r#"{"ok":false,"error":"unserializable response"}"#.to_string());
        writeln!(out, "{text}").map_err(|e| CliError::Input(format!("response stream: {e}")))?;
        out.flush()
            .map_err(|e| CliError::Input(format!("response stream: {e}")))?;
        if shutdown {
            break;
        }
    }
    Ok(())
}

/// Best-effort human-readable panic payload.
fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Replaces every non-finite number in the tree with JSON `null`.
fn sanitize(value: &mut Value) {
    match value {
        Value::Number(n) if !n.is_finite() => *value = Value::Null,
        Value::Array(items) => items.iter_mut().for_each(sanitize),
        Value::Object(fields) => fields.iter_mut().for_each(|(_, v)| sanitize(v)),
        _ => {}
    }
}

// ---------------------------------------------------------------------
// JSON plumbing (the serde shim has no `json!` macro; responses are
// built as literal `Value` trees).

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn text(s: impl Into<String>) -> Value {
    Value::String(s.into())
}

fn num(n: u64) -> Value {
    Value::Number(n as f64)
}

fn ok(op: &str, mut extra: Vec<(&str, Value)>) -> Value {
    let mut fields = vec![("ok", Value::Bool(true)), ("op", text(op))];
    fields.append(&mut extra);
    obj(fields)
}

fn fail(message: impl Into<String>) -> Value {
    obj(vec![
        ("ok", Value::Bool(false)),
        ("error", Value::String(message.into())),
    ])
}

fn str_field(request: &Value, key: &str) -> Option<String> {
    request[key].as_str().map(str::to_string)
}

fn require(request: &Value, key: &str) -> Result<String, Value> {
    str_field(request, key).ok_or_else(|| fail(format!("'{key}' (string) is required")))
}

/// Parses the optional `support` field. A present-but-malformed value
/// (a string `"0.1"`, an out-of-range number) is a hard request error —
/// silently falling back to the CLI default would mine at a threshold
/// the caller never asked for.
fn support_field(request: &Value, args: &Args) -> Result<f64, Value> {
    match &request["support"] {
        Value::Null => Ok(args.support),
        v => match v.as_f64() {
            Some(s) if s > 0.0 && s <= 1.0 => Ok(s),
            Some(s) => Err(fail(format!("'support' must be in (0, 1], got {s}"))),
            None => Err(fail(
                "'support' must be a number in (0, 1]; strings are not coerced",
            )),
        },
    }
}

/// Parses the optional `top` field with the same strictness.
fn top_field(request: &Value, args: &Args) -> Result<usize, Value> {
    match &request["top"] {
        Value::Null => Ok(args.top),
        v => v
            .as_u64()
            .map(|t| t as usize)
            .ok_or_else(|| fail("'top' must be a non-negative integer")),
    }
}

/// Parses an optional label vector: JSON numbers (0/1) or booleans.
fn bool_vector(value: &Value, n_rows: usize) -> Result<Vec<bool>, Value> {
    let items = value
        .as_array()
        .ok_or_else(|| fail("'u' must be an array of 0/1 or booleans"))?;
    if items.len() != n_rows {
        return Err(fail(format!(
            "'u' has {} entries, dataset has {n_rows} rows",
            items.len()
        )));
    }
    items
        .iter()
        .map(|v| match (v.as_bool(), v.as_f64()) {
            (Some(b), _) => Ok(b),
            (None, Some(x)) if x == 0.0 || x == 1.0 => Ok(x == 1.0),
            _ => Err(fail("'u' entries must be 0/1 or booleans")),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Request dispatch

fn handle_request(state: &mut ServeState, args: &Args, line: &str) -> (Value, bool) {
    let request: Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => return (fail(format!("bad request: {e}")), false),
    };
    let op = match request["op"].as_str() {
        Some(op) => op.to_string(),
        None => return (fail("'op' (string) is required"), false),
    };
    let response = match op.as_str() {
        "register" => handle_register(state, args, &request),
        "mine" => handle_mine(state, args, &request),
        "query" => handle_query(state, args, &request),
        "stats" => Ok(handle_stats(state)),
        // Deliberate fault drill: proves panic containment end to end.
        "panic" => panic!("panic op requested"),
        "shutdown" => return (ok("shutdown", vec![]), true),
        other => Err(fail(format!("unknown op '{other}'"))),
    };
    (response.unwrap_or_else(|e| e), false)
}

fn handle_stats(state: &ServeState) -> Value {
    ok(
        "stats",
        vec![
            ("datasets", num(state.datasets.len() as u64)),
            ("cached_lattices", num(state.cache.len() as u64)),
            ("resident_bytes", num(state.cache.resident_bytes())),
            ("capacity_bytes", num(state.cache.capacity_bytes())),
            ("requests", num(state.stats.requests)),
            ("failures", num(state.stats.failures)),
            ("panics", num(state.stats.panics)),
            ("timeouts", num(state.stats.timeouts)),
            ("quarantines", num(state.stats.quarantines)),
            ("persist_failures", num(state.stats.persist_failures)),
            (
                "io_retries",
                num(artifact_io::retries_total() - state.retries_base),
            ),
            ("cache_hits", num(state.cache.hits())),
            ("cache_misses", num(state.cache.misses())),
            ("cache_evictions", num(state.cache.evictions())),
        ],
    )
}

fn handle_register(state: &mut ServeState, args: &Args, request: &Value) -> Result<Value, Value> {
    let name = require(request, "name")?;
    let registered = if let Some(path) = str_field(request, "artifact") {
        // A persisted dataset artifact: decoding re-validates checksum,
        // schema and the one-hot invariant.
        let ds =
            artifact::load_dataset(Path::new(&path)).map_err(|e| fail(format!("{path}: {e}")))?;
        Registered {
            data: ds.data,
            v: ds.v,
            u: ds.u,
            hash: ds.hash,
        }
    } else {
        let path = require(request, "path")?;
        let mut csv_args = args.clone();
        csv_args.label = require(request, "label")?;
        csv_args.pred = require(request, "pred")?;
        match &request["bins"] {
            Value::Null => {}
            v => {
                csv_args.bins = v
                    .as_u64()
                    .ok_or_else(|| fail("'bins' must be a non-negative integer"))?
                    as usize;
            }
        }
        let content = std::fs::read_to_string(&path).map_err(|e| fail(format!("{path}: {e}")))?;
        let prepared = prepare(&content, &csv_args).map_err(|e| fail(e.to_string()))?;
        let hash = artifact::dataset_hash(&prepared.data);
        Registered {
            data: prepared.data,
            v: prepared.v,
            u: prepared.u,
            hash,
        }
    };
    let rows = registered.data.n_rows();
    let hash = registered.hash;
    state.datasets.insert(name.clone(), registered);
    Ok(ok(
        "register",
        vec![
            ("name", text(name)),
            ("rows", num(rows as u64)),
            ("hash", text(format!("{hash:016x}"))),
        ],
    ))
}

/// The per-request mining/recount budget: the CLI-wide budget, with the
/// per-request deadline (`--request-timeout-ms`) layered on top.
fn request_budget(args: &Args) -> fpm::Budget {
    let mut budget = budget_from_args(args);
    if let Some(ms) = args.request_timeout_ms {
        budget = budget.with_timeout(std::time::Duration::from_millis(ms));
    }
    budget
}

/// Maps a truncation to a soft error, counting deadline expiries.
fn truncation_failure(stats: &mut ServeStats, reason: TruncationReason, what: &str) -> Value {
    if matches!(
        reason,
        TruncationReason::Timeout | TruncationReason::Cancelled
    ) {
        stats.timeouts += 1;
        obs::counter("serve.timeouts", 1);
        fail(format!(
            "request deadline expired during {what} ({reason}); raise \
             --request-timeout-ms or the support threshold"
        ))
    } else {
        fail(format!(
            "{what} truncated ({reason}); refusing to serve a partial lattice"
        ))
    }
}

/// Moves a poisoned registry artifact aside and records the recovery.
/// Never fails the request: if even the rename fails, the warning says
/// so and the rebuild proceeds regardless.
fn quarantine_artifact(stats: &mut ServeStats, path: &Path, why: &str, warnings: &mut Vec<String>) {
    stats.quarantines += 1;
    obs::counter("serve.quarantines", 1);
    match artifact::quarantine(&DiskIo, path) {
        Ok(dest) => warnings.push(format!(
            "{}: {why}; quarantined to {} and re-mining",
            path.display(),
            dest.display()
        )),
        Err(e) => warnings.push(format!(
            "{}: {why}; quarantine rename failed ({e}); re-mining anyway",
            path.display()
        )),
    }
}

/// The mine-or-load path shared by `mine` and `query`: cache, then the
/// on-disk registry, then a cold mine (written through to disk when a
/// registry directory is configured). A poisoned registry artifact is
/// quarantined and transparently rebuilt; every recovery step lands in
/// `warnings`.
fn ensure_lattice(
    state: &mut ServeState,
    args: &Args,
    request: &Value,
    name: &str,
    warnings: &mut Vec<String>,
) -> Result<(Arc<ItemsetArena<()>>, &'static str, f64), Value> {
    let support = support_field(request, args)?;
    let engine = str_field(request, "engine").unwrap_or_else(|| engine_label(args));
    let reg = state
        .datasets
        .get(name)
        .ok_or_else(|| fail(format!("dataset '{name}' is not registered")))?;
    let n = reg.data.n_rows();
    let params = fpm::MiningParams::with_min_support_fraction(support, n);
    let cache_key = CacheKey {
        dataset_hash: reg.hash,
        min_support_count: params.min_support_count,
        engine: engine.clone(),
        max_len: None,
    };
    if let Some(arena) = state.cache.get(&cache_key) {
        return Ok((arena, "cache", support));
    }
    let arena_key = ArenaKey {
        dataset_hash: reg.hash,
        min_support_count: params.min_support_count,
        max_len: None,
        engine: engine.clone(),
        n_rows: n as u64,
    };
    if let Some(dir) = &state.dir {
        let path = dir.join(artifact::arena_file_name(&arena_key));
        if DiskIo.exists(&path) {
            // A poisoned registry file (bad checksum, truncation,
            // version skew, key mismatch) is quarantined and rebuilt;
            // the service never recounts unverified bytes, but it also
            // never lets one bad file poison the session.
            match artifact::load_arena(&path) {
                Ok((loaded_key, candidates)) if loaded_key == arena_key => {
                    let arena = Arc::new(candidates);
                    state.cache.insert(cache_key, Arc::clone(&arena));
                    return Ok((arena, "artifact", support));
                }
                Ok(_) => quarantine_artifact(
                    &mut state.stats,
                    &path,
                    "artifact key does not match its file name",
                    warnings,
                ),
                Err(e) => quarantine_artifact(&mut state.stats, &path, &e.to_string(), warnings),
            }
        }
    }
    let reg = &state.datasets[name];
    let algorithm = parse_engine(&engine).map_err(|e| fail(e.to_string()))?;
    let explorer = DivExplorer::new(support)
        .with_algorithm(algorithm)
        .with_budget(request_budget(args));
    let report = explorer
        .explore(&reg.data, &reg.v, &reg.u, &args.metrics)
        .map_err(|e| fail(e.to_string()))?;
    if let Some(reason) = report.completeness().truncation_reason() {
        return Err(truncation_failure(&mut state.stats, reason, "mining"));
    }
    let candidates = candidates_of(&report);
    if let Some(dir) = &state.dir {
        // Write-through persistence is best-effort: a full or failing
        // disk degrades to serving from memory, never to a failed
        // request. The atomic-write protocol guarantees the registry
        // file is all-old or all-new even if we crash right here.
        let path = dir.join(artifact::arena_file_name(&arena_key));
        let persisted = DiskIo
            .create_dir_all(dir)
            .map_err(artifact::ArtifactError::from)
            .and_then(|()| artifact::save_arena(&path, &arena_key, &candidates));
        if let Err(e) = persisted {
            state.stats.persist_failures += 1;
            obs::counter("serve.persist_failures", 1);
            warnings.push(format!(
                "artifact registry write failed ({e}); serving from memory only"
            ));
        }
    }
    let arena = Arc::new(candidates);
    state.cache.insert(cache_key, Arc::clone(&arena));
    Ok((arena, "mined", support))
}

/// Appends the warnings array to a successful response, if any.
fn with_warnings(mut response: Value, warnings: Vec<String>) -> Value {
    if !warnings.is_empty() {
        if let Value::Object(fields) = &mut response {
            fields.push((
                "warnings".to_string(),
                Value::Array(warnings.into_iter().map(Value::String).collect()),
            ));
        }
    }
    response
}

fn handle_mine(state: &mut ServeState, args: &Args, request: &Value) -> Result<Value, Value> {
    let name = require(request, "name")?;
    let mut warnings = Vec::new();
    let (arena, source, support) = ensure_lattice(state, args, request, &name, &mut warnings)?;
    Ok(with_warnings(
        ok(
            "mine",
            vec![
                ("name", text(name)),
                ("patterns", num(arena.len() as u64)),
                ("support", Value::Number(support)),
                ("source", text(source)),
            ],
        ),
        warnings,
    ))
}

fn handle_query(state: &mut ServeState, args: &Args, request: &Value) -> Result<Value, Value> {
    let name = require(request, "name")?;
    // Validate every request field before ensure_lattice: a malformed
    // request must fail fast without side effects (no mine, no
    // quarantine, no registry write).
    let top = top_field(request, args)?;
    let metrics = match str_field(request, "metric") {
        Some(spec) => parse_metrics(&spec).map_err(|e| fail(e.to_string()))?,
        None => args.metrics.clone(),
    };
    let n_rows = state
        .datasets
        .get(&name)
        .map(|reg| reg.data.n_rows())
        .ok_or_else(|| fail(format!("dataset '{name}' is not registered")))?;
    let u_override = if request["u"].is_null() {
        None
    } else {
        Some(bool_vector(&request["u"], n_rows)?)
    };
    let mut warnings = Vec::new();
    let (arena, source, support) = ensure_lattice(state, args, request, &name, &mut warnings)?;
    let reg = &state.datasets[&name];
    let u: &[bool] = u_override.as_deref().unwrap_or(&reg.u);

    // The warm path: one streaming recount against the shared lattice,
    // no mining phase (see DESIGN.md §6g).
    let report = DivExplorer::new(support)
        .with_budget(request_budget(args))
        .from_artifact(&reg.data, &arena, &reg.v, u, &metrics)
        .map_err(|e| fail(e.to_string()))?;
    if let Some(reason) = report.completeness().truncation_reason() {
        // The recount engine emits nothing when cut mid-phase, so a
        // truncated recount must fail soft — not return empty results
        // that look like "no divergence anywhere".
        return Err(truncation_failure(&mut state.stats, reason, "recount"));
    }

    let mut rows = Vec::new();
    for idx in report.ranked(0, SortBy::Divergence).into_iter().take(top) {
        rows.push(obj(vec![
            ("itemset", text(report.display_itemset(report.items(idx)))),
            ("support", Value::Number(report.support_fraction(idx))),
            ("divergence", Value::Number(report.divergence(idx, 0))),
            ("t", Value::Number(report.t_statistic(idx, 0))),
        ]));
    }
    Ok(with_warnings(
        ok(
            "query",
            vec![
                ("name", text(name)),
                ("metric", text(metrics[0].short_name())),
                ("dataset_rate", Value::Number(report.dataset_rate(0))),
                ("patterns", num(report.len() as u64)),
                ("source", text(source)),
                ("results", Value::Array(rows)),
            ],
        ),
        warnings,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Command;

    const CSV: &str = "\
grp,other,y,yhat
a,x,0,1
a,y,0,1
a,x,0,1
a,y,0,0
b,x,0,0
b,y,0,0
b,x,0,0
b,y,0,1
";

    fn serve_args(artifact_dir: &str) -> Args {
        let mut argv = vec!["serve".to_string()];
        if !artifact_dir.is_empty() {
            argv.extend(["--artifact".to_string(), artifact_dir.to_string()]);
        }
        let args = Args::parse(argv).unwrap();
        assert_eq!(args.command, Command::Serve);
        args
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cli-serve-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Drives the loop over in-memory NDJSON and parses each response.
    fn drive(args: &Args, requests: &[&str]) -> Vec<Value> {
        let input = requests.join("\n");
        let mut out = Vec::new();
        serve_loop(args, input.as_bytes(), &mut out).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|line| serde_json::from_str(line).unwrap())
            .collect()
    }

    fn register_line(csv_path: &std::path::Path) -> String {
        format!(
            r#"{{"op":"register","name":"toy","path":"{}","label":"y","pred":"yhat"}}"#,
            csv_path.display()
        )
    }

    #[test]
    fn register_mine_query_roundtrip() {
        let dir = temp_dir("roundtrip");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, CSV).unwrap();
        let register = register_line(&csv_path);
        let responses = drive(
            &serve_args(""),
            &[
                &register,
                r#"{"op":"mine","name":"toy","support":0.25}"#,
                r#"{"op":"mine","name":"toy","support":0.25}"#,
                r#"{"op":"query","name":"toy","support":0.25,"top":3}"#,
                r#"{"op":"stats"}"#,
                r#"{"op":"shutdown"}"#,
            ],
        );
        assert_eq!(responses.len(), 6);
        for r in &responses {
            assert_eq!(r["ok"].as_bool(), Some(true), "{r:?}");
        }
        assert_eq!(responses[0]["rows"].as_u64(), Some(8));
        assert_eq!(responses[1]["source"].as_str(), Some("mined"));
        assert_eq!(responses[2]["source"].as_str(), Some("cache"));
        let results = responses[3]["results"].as_array().unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0]["itemset"].as_str(), Some("grp=a, other=x"));
        assert!((results[0]["divergence"].as_f64().unwrap() - 0.5).abs() < 1e-9);
        assert_eq!(responses[4]["cached_lattices"].as_u64(), Some(1));
        assert_eq!(responses[4]["requests"].as_u64(), Some(5));
        assert_eq!(responses[4]["failures"].as_u64(), Some(0));
        assert_eq!(responses[4]["panics"].as_u64(), Some(0));
        assert_eq!(responses[4]["quarantines"].as_u64(), Some(0));
        assert!(responses[4]["cache_hits"].as_u64().unwrap() >= 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn query_with_an_inline_label_vector_recounts_without_remining() {
        let dir = temp_dir("relabel");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, CSV).unwrap();
        let register = register_line(&csv_path);
        // A second query predicts positive everywhere: every subgroup's
        // FPR equals the overall rate, so all divergences collapse to
        // zero — while the lattice is served from cache, not re-mined.
        let responses = drive(
            &serve_args(""),
            &[
                &register,
                r#"{"op":"query","name":"toy","support":0.25,"top":1}"#,
                r#"{"op":"query","name":"toy","support":0.25,"top":1,"u":[1,1,1,1,1,1,1,1]}"#,
            ],
        );
        assert_eq!(responses[1]["source"].as_str(), Some("mined"));
        assert_eq!(responses[2]["source"].as_str(), Some("cache"));
        assert_eq!(responses[1]["patterns"], responses[2]["patterns"]);
        let before = responses[1]["results"][0]["divergence"].as_f64().unwrap();
        let after = responses[2]["results"][0]["divergence"].as_f64().unwrap();
        assert!((before - 0.5).abs() < 1e-9, "{before}");
        assert!(after.abs() < 1e-9, "{after}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lattices_persist_to_the_artifact_registry_across_restarts() {
        let dir = temp_dir("registry");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, CSV).unwrap();
        let registry = dir.join("artifacts");
        let args = serve_args(registry.to_str().unwrap());
        let register = register_line(&csv_path);
        let mine = r#"{"op":"mine","name":"toy","support":0.25}"#;
        let first = drive(&args, &[&register, mine]);
        assert_eq!(first[1]["source"].as_str(), Some("mined"));
        // A fresh loop (fresh cache) finds the persisted artifact.
        let second = drive(&args, &[&register, mine]);
        assert_eq!(second[1]["source"].as_str(), Some("artifact"));
        assert_eq!(second[1]["patterns"], first[1]["patterns"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn register_accepts_a_dataset_artifact() {
        let dir = temp_dir("from-artifact");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, CSV).unwrap();
        // First loop registers from CSV and we persist the dataset via
        // the artifact API; second loop registers from the artifact.
        let mut csv_args = serve_args("");
        csv_args.label = "y".to_string();
        csv_args.pred = "yhat".to_string();
        let prepared = prepare(CSV, &csv_args).unwrap();
        let ds_path = dir.join("toy.dxd");
        artifact::save_dataset(&ds_path, &prepared.data, &prepared.v, &prepared.u).unwrap();

        let register = format!(
            r#"{{"op":"register","name":"toy","artifact":"{}"}}"#,
            ds_path.display()
        );
        let responses = drive(
            &serve_args(""),
            &[
                &register,
                r#"{"op":"query","name":"toy","support":0.25,"top":1}"#,
            ],
        );
        assert_eq!(responses[0]["ok"].as_bool(), Some(true));
        assert_eq!(responses[0]["rows"].as_u64(), Some(8));
        assert_eq!(
            responses[1]["results"][0]["itemset"].as_str(),
            Some("grp=a, other=x")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_requests_fail_soft_and_the_loop_continues() {
        let responses = drive(
            &serve_args(""),
            &[
                "this is not json",
                r#"{"no_op_field":1}"#,
                r#"{"op":"launch"}"#,
                r#"{"op":"mine","name":"ghost"}"#,
                r#"{"op":"register","name":"x"}"#,
                r#"{"op":"stats"}"#,
            ],
        );
        assert_eq!(responses.len(), 6);
        for r in &responses[..5] {
            assert_eq!(r["ok"].as_bool(), Some(false), "{r:?}");
            assert!(r["error"].as_str().is_some());
        }
        assert_eq!(responses[5]["ok"].as_bool(), Some(true));
        assert_eq!(responses[5]["failures"].as_u64(), Some(5));
    }

    #[test]
    fn a_malformed_support_field_is_rejected_not_defaulted() {
        let dir = temp_dir("bad-support");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, CSV).unwrap();
        let register = register_line(&csv_path);
        // A string support must NOT silently mine at the CLI default
        // (0.05) — that would serve tallies at a threshold the caller
        // never asked for.
        let responses = drive(
            &serve_args(""),
            &[
                &register,
                r#"{"op":"mine","name":"toy","support":"0.25"}"#,
                r#"{"op":"query","name":"toy","support":1.5}"#,
                r#"{"op":"query","name":"toy","support":0.25,"top":"three"}"#,
                r#"{"op":"mine","name":"toy","support":0.25}"#,
            ],
        );
        assert_eq!(responses[1]["ok"].as_bool(), Some(false));
        assert!(
            responses[1]["error"].as_str().unwrap().contains("support"),
            "{:?}",
            responses[1]
        );
        assert_eq!(responses[2]["ok"].as_bool(), Some(false));
        assert!(responses[2]["error"].as_str().unwrap().contains("(0, 1]"));
        assert_eq!(responses[3]["ok"].as_bool(), Some(false));
        assert!(responses[3]["error"].as_str().unwrap().contains("top"));
        // The loop continued and a well-formed request still succeeds.
        assert_eq!(responses[4]["ok"].as_bool(), Some(true));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_finite_statistics_serialize_as_null_not_a_crash() {
        // All-positive ground truth: FPR has no negatives to divide by,
        // so the dataset rate and every divergence are NaN. The reply
        // must sanitize them to null and the loop must keep serving.
        let degenerate = "\
grp,other,y,yhat
a,x,1,1
a,y,1,1
a,x,1,0
b,y,1,0
b,x,1,1
b,y,1,0
b,x,1,1
a,y,1,0
";
        let dir = temp_dir("nan");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, degenerate).unwrap();
        let register = register_line(&csv_path);
        let responses = drive(
            &serve_args(""),
            &[
                &register,
                r#"{"op":"query","name":"toy","support":0.25,"metric":"FPR","top":2}"#,
                r#"{"op":"stats"}"#,
            ],
        );
        assert_eq!(
            responses[1]["ok"].as_bool(),
            Some(true),
            "{:?}",
            responses[1]
        );
        assert!(
            responses[1]["dataset_rate"].is_null(),
            "NaN must become null: {:?}",
            responses[1]
        );
        assert_eq!(responses[2]["ok"].as_bool(), Some(true));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_malformed_query_fails_fast_without_mining() {
        let dir = temp_dir("fail-fast");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, CSV).unwrap();
        let register = register_line(&csv_path);
        // A wrong-length u vector must be rejected before any lattice
        // work: no mine, no cache entry, no registry side effects.
        let responses = drive(
            &serve_args(""),
            &[
                &register,
                r#"{"op":"query","name":"toy","support":0.25,"u":[1,0]}"#,
                r#"{"op":"stats"}"#,
            ],
        );
        assert_eq!(responses[1]["ok"].as_bool(), Some(false));
        assert!(responses[1]["error"].as_str().unwrap().contains("8 rows"));
        assert_eq!(responses[2]["cached_lattices"].as_u64(), Some(0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_panicking_handler_is_contained_and_counted() {
        let responses = drive(
            &serve_args(""),
            &[
                r#"{"op":"panic"}"#,
                r#"{"op":"panic"}"#,
                r#"{"op":"stats"}"#,
            ],
        );
        assert_eq!(responses.len(), 3);
        for r in &responses[..2] {
            assert_eq!(r["ok"].as_bool(), Some(false), "{r:?}");
            assert!(r["error"].as_str().unwrap().contains("panicked"), "{r:?}");
        }
        assert_eq!(responses[2]["ok"].as_bool(), Some(true));
        assert_eq!(responses[2]["panics"].as_u64(), Some(2));
        assert_eq!(responses[2]["failures"].as_u64(), Some(2));
    }

    #[test]
    fn an_expired_request_deadline_fails_soft_and_is_counted() {
        let dir = temp_dir("deadline");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, CSV).unwrap();
        let mut args = serve_args("");
        args.request_timeout_ms = Some(0);
        let register = register_line(&csv_path);
        let responses = drive(
            &args,
            &[
                &register,
                r#"{"op":"mine","name":"toy","support":0.25}"#,
                r#"{"op":"stats"}"#,
            ],
        );
        assert_eq!(responses[1]["ok"].as_bool(), Some(false));
        assert!(
            responses[1]["error"].as_str().unwrap().contains("deadline"),
            "{:?}",
            responses[1]
        );
        assert_eq!(responses[2]["ok"].as_bool(), Some(true));
        assert!(responses[2]["timeouts"].as_u64().unwrap() >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_stops_the_loop_before_later_requests() {
        let responses = drive(
            &serve_args(""),
            &[r#"{"op":"shutdown"}"#, r#"{"op":"stats"}"#],
        );
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0]["op"].as_str(), Some("shutdown"));
    }

    /// Flips one byte in the registry's persisted arena artifact.
    fn poison_registry_arena(registry: &std::path::Path) -> std::path::PathBuf {
        let arena_file = std::fs::read_dir(registry)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|x| x == "dxa"))
            .unwrap();
        let mut bytes = std::fs::read(&arena_file).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&arena_file, &bytes).unwrap();
        arena_file
    }

    #[test]
    fn a_tampered_registry_artifact_is_quarantined_and_rebuilt() {
        let dir = temp_dir("quarantine");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, CSV).unwrap();
        let registry = dir.join("artifacts");
        let args = serve_args(registry.to_str().unwrap());
        let register = register_line(&csv_path);
        let mine = r#"{"op":"mine","name":"toy","support":0.25}"#;
        let first = drive(&args, &[&register, mine]);
        let patterns = first[1]["patterns"].as_u64().unwrap();
        let arena_file = poison_registry_arena(&registry);

        // The poisoned artifact is quarantined, the lattice re-mined
        // and re-persisted — the request succeeds with a warning
        // instead of erroring the session.
        let responses = drive(&args, &[&register, mine, r#"{"op":"stats"}"#]);
        assert_eq!(
            responses[1]["ok"].as_bool(),
            Some(true),
            "{:?}",
            responses[1]
        );
        assert_eq!(responses[1]["source"].as_str(), Some("mined"));
        assert_eq!(responses[1]["patterns"].as_u64(), Some(patterns));
        let warnings = responses[1]["warnings"].as_array().unwrap();
        assert!(
            warnings[0].as_str().unwrap().contains("checksum mismatch"),
            "{warnings:?}"
        );
        assert!(warnings[0].as_str().unwrap().contains("quarantined"));
        assert_eq!(responses[2]["quarantines"].as_u64(), Some(1));

        // Forensics: the poisoned bytes moved aside; the registry slot
        // holds a fresh, valid artifact a later session loads cleanly.
        assert!(artifact::quarantine_path(&arena_file).exists());
        assert!(arena_file.exists(), "registry slot rebuilt");
        let third = drive(&args, &[&register, mine]);
        assert_eq!(third[1]["source"].as_str(), Some("artifact"));
        assert_eq!(third[1]["patterns"].as_u64(), Some(patterns));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_version_skewed_artifact_is_quarantined_and_rebuilt() {
        let dir = temp_dir("version-skew");
        let csv_path = dir.join("toy.csv");
        std::fs::write(&csv_path, CSV).unwrap();
        let registry = dir.join("artifacts");
        let args = serve_args(registry.to_str().unwrap());
        let register = register_line(&csv_path);
        let mine = r#"{"op":"mine","name":"toy","support":0.25}"#;
        drive(&args, &[&register, mine]);

        // Bump the format version and fix up the trailing checksum so
        // only the version differs — a file from a future release.
        let arena_file = std::fs::read_dir(&registry)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|x| x == "dxa"))
            .unwrap();
        let mut bytes = std::fs::read(&arena_file).unwrap();
        bytes[4..8].copy_from_slice(&(artifact::FORMAT_VERSION + 9).to_le_bytes());
        let end = bytes.len() - 8;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in &bytes[..end] {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        bytes[end..].copy_from_slice(&h.to_le_bytes());
        std::fs::write(&arena_file, &bytes).unwrap();

        let responses = drive(&args, &[&register, mine]);
        assert_eq!(
            responses[1]["ok"].as_bool(),
            Some(true),
            "{:?}",
            responses[1]
        );
        let warnings = responses[1]["warnings"].as_array().unwrap();
        assert!(
            warnings[0]
                .as_str()
                .unwrap()
                .contains("unsupported artifact version"),
            "{warnings:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sanitize_nulls_non_finite_numbers_recursively() {
        let mut v = obj(vec![
            ("a", Value::Number(f64::NAN)),
            (
                "b",
                Value::Array(vec![
                    Value::Number(f64::INFINITY),
                    Value::Number(1.5),
                    obj(vec![("c", Value::Number(f64::NEG_INFINITY))]),
                ]),
            ),
        ]);
        sanitize(&mut v);
        assert!(v["a"].is_null());
        assert!(v["b"][0].is_null());
        assert_eq!(v["b"][1].as_f64(), Some(1.5));
        assert!(v["b"][2]["c"].is_null());
    }
}
