//! The `divexplorer` command-line binary (thin wrapper over [`cli`]).
//!
//! Exit codes: 0 success, 2 usage error, 3 bad input, 4 truncated by
//! budget. All diagnostics go to stderr with a `divexplorer: ` prefix;
//! this wrapper never panics.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") || argv.is_empty() {
        print!("{}", cli::USAGE);
        std::process::exit(if argv.is_empty() { 2 } else { 0 });
    }
    let args = match cli::Args::parse(argv) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("divexplorer: {e}\n\n{}", cli::USAGE);
            std::process::exit(2);
        }
    };
    match cli::run(&args) {
        Ok((output, status, stats)) => {
            print!("{output}");
            if let Some(summary) = stats {
                eprintln!("{}", summary.trim_end());
            }
            if let cli::RunStatus::Truncated(reason) = status {
                eprintln!("divexplorer: exploration truncated ({reason}); exiting 4");
            }
            std::process::exit(status.exit_code());
        }
        Err(e) => {
            eprintln!("divexplorer: {e}");
            std::process::exit(e.exit_code());
        }
    }
}
