//! The `divexplorer` command-line binary (thin wrapper over [`cli`]).

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") || argv.is_empty() {
        print!("{}", cli::USAGE);
        std::process::exit(if argv.is_empty() { 2 } else { 0 });
    }
    let args = match cli::Args::parse(argv) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("{e}\n\n{}", cli::USAGE);
            std::process::exit(2);
        }
    };
    match cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
