//! Library behind the `divexplorer` command-line tool.
//!
//! The CLI analyzes a CSV with feature columns plus a ground-truth column
//! and a prediction column, and exposes the main analyses as subcommands:
//!
//! ```text
//! divexplorer explore    --input data.csv --label y --pred yhat [--metric FPR,FNR]
//!                        [--support 0.05] [--top 10] [--bins 3] [--prune 0.05]
//!                        [--fdr 0.05] [--json]
//! divexplorer shapley    --input data.csv --label y --pred yhat --itemset "a=1,b=x"
//! divexplorer corrective --input data.csv --label y --pred yhat [--top 5]
//! divexplorer global     --input data.csv --label y --pred yhat [--top 15]
//! divexplorer lattice    --input data.csv --label y --pred yhat --itemset "a=1,b=x"
//!                        [--threshold 0.1] [--dot]
//! divexplorer fairness   --input data.csv --label y --pred yhat [--top 3]
//! ```
//!
//! The artifact suite (see [`artifacts`] and [`serve`]) persists the
//! expensive mine and re-analyzes by streaming recount:
//!
//! ```text
//! divexplorer index      --input data.csv --label y --pred yhat --name d1 --artifact DIR
//! divexplorer probe      --artifact DIR/d1.dxd
//! divexplorer analyze    --artifact DIR --name d1 [--metric FNR] [--support 0.05]
//! divexplorer serve      [--artifact DIR]         # NDJSON request loop on stdin
//! ```
//!
//! All logic lives here (parameterized over the CSV *content* and an output
//! writer) so it is unit-testable without touching the filesystem.

pub mod artifacts;
pub mod serve;

use std::fmt::Write as _;

use datasets::csv::{parse_csv, CsvTable};
use divexplorer::{
    corrective::top_corrective,
    fairness::{audit_fairness, Criterion},
    global_div::global_item_divergence_checked,
    lattice::sublattice,
    pruning::prune_redundant,
    shapley::item_contributions,
    DiscreteDataset, DivExplorer, ItemId, Metric, SortBy,
};

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// The subcommand.
    pub command: Command,
    /// CSV path.
    pub input: String,
    /// Ground-truth column name.
    pub label: String,
    /// Prediction column name.
    pub pred: String,
    /// Metrics to analyze.
    pub metrics: Vec<Metric>,
    /// Minimum support threshold.
    pub support: f64,
    /// How many rows to print.
    pub top: usize,
    /// Quantile bins for numeric columns.
    pub bins: usize,
    /// Optional ε-redundancy pruning.
    pub prune: Option<f64>,
    /// Optional FDR level for significance screening.
    pub fdr: Option<f64>,
    /// Emit JSON instead of a table (explore only).
    pub json: bool,
    /// Target itemset (shapley/lattice), as `attr=value` pairs.
    pub itemset: Vec<(String, String)>,
    /// Lattice highlight threshold.
    pub threshold: f64,
    /// Emit Graphviz DOT (lattice only).
    pub dot: bool,
    /// Wall-clock budget for the exploration, in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Per-request wall-clock deadline for `serve`, in milliseconds: an
    /// over-budget request fails soft and the loop continues.
    pub request_timeout_ms: Option<u64>,
    /// Periodically snapshot the serve metrics registry to this path as
    /// a Prometheus text exposition (crash-safe atomic writes).
    pub metrics_file: Option<String>,
    /// Interval between `--metrics-file` snapshots, in milliseconds.
    pub metrics_interval_ms: u64,
    /// Slow-request threshold for `serve`, in milliseconds: a request at
    /// or over it dumps its flight-recorder trace to stderr.
    pub slow_ms: Option<u64>,
    /// Cap on the number of mined itemsets.
    pub max_itemsets: Option<u64>,
    /// Cap on the itemset length explored.
    pub max_depth: Option<usize>,
    /// Stream telemetry events (spans, counters, histograms) as NDJSON
    /// to this path.
    pub trace_json: Option<String>,
    /// Print an aggregated telemetry summary to stderr after the run.
    pub stats: bool,
    /// Mining engine backing the exploration.
    pub engine: fpm::Algorithm,
    /// Mine through the sharded two-pass engine with this many row
    /// shards (bit-identical results at a fraction of the peak memory).
    pub shards: Option<usize>,
    /// Worker threads for mining and the sharded recount pass.
    pub threads: usize,
    /// Shards to load ahead of the recount workers (0 = inline IO).
    pub prefetch: usize,
    /// Artifact path: a file for `probe`, the registry directory for
    /// `index`, `analyze` and `serve`.
    pub artifact: String,
    /// Dataset name in the artifact registry (`index`, `analyze`).
    pub name: String,
    /// On-disk layout written by `index`: `dxd` persists the dense
    /// dataset artifact only; `dxs` additionally persists compressed
    /// columnar shards for out-of-core recounts.
    pub format: IndexFormat,
}

/// The artifact layout `index` writes (`--format`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexFormat {
    /// Dataset (`.dxd`) + lattice (`.dxa`) artifacts only.
    Dxd,
    /// Additionally persist dictionary-encoded, bit-packed row shards
    /// (`.dxs`) so later recounts can stream one decoded shard at a
    /// time instead of materializing the dense dataset.
    Dxs,
}

/// The supported subcommands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Rank divergent subgroups.
    Explore,
    /// Shapley attribution of one itemset.
    Shapley,
    /// Top corrective items.
    Corrective,
    /// Global item divergence.
    Global,
    /// Sub-lattice rendering.
    Lattice,
    /// Group-fairness audit (four criteria per subgroup).
    Fairness,
    /// Validate an artifact's envelope and print its header.
    Probe,
    /// Encode the dataset and mine + persist its frequent lattice.
    Index,
    /// Re-analyze from persisted artifacts (recount, no mining phase).
    Analyze,
    /// Resident NDJSON analysis service on stdin/stdout.
    Serve,
}

/// CLI errors, all user-facing.
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// Bad usage with an explanation.
    Usage(String),
    /// Input processing failed.
    Input(String),
    /// The analysis needs a complete exploration but the budget truncated
    /// it (closure-dependent commands: shapley, global).
    Truncated(fpm::TruncationReason),
}

impl CliError {
    /// The process exit code for this error: usage errors exit 2, bad
    /// input exits 3, budget truncation exits 4.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Input(_) => 3,
            CliError::Truncated(_) => 4,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Input(msg) => write!(f, "input error: {msg}"),
            CliError::Truncated(reason) => write!(
                f,
                "exploration truncated ({reason}): this analysis needs the complete \
                 frequent lattice — raise the budget or the support threshold"
            ),
        }
    }
}

impl std::error::Error for CliError {}

/// What a successful run saw of the frequent lattice: [`RunStatus::Truncated`]
/// means the printed results are a valid but partial view (exit code 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// The exploration covered the whole frequent lattice.
    Complete,
    /// The budget cut the exploration short; results are partial.
    Truncated(fpm::TruncationReason),
}

impl RunStatus {
    /// The process exit code: 0 for complete runs, 4 for truncated ones.
    pub fn exit_code(&self) -> i32 {
        match self {
            RunStatus::Complete => 0,
            RunStatus::Truncated(_) => 4,
        }
    }
}

/// The usage banner printed on `--help` or bad usage.
pub const USAGE: &str = "\
divexplorer — pattern-divergence analysis of classifier behavior

USAGE:
  divexplorer <explore|shapley|corrective|global|lattice|fairness> --input FILE \\
      --label COL --pred COL [options]
  divexplorer index   --input FILE --label COL --pred COL --name NAME --artifact DIR
  divexplorer probe   --artifact FILE
  divexplorer analyze --artifact DIR --name NAME [options]
  divexplorer serve   [--artifact DIR] [--request-timeout-ms MS] \\
      [--metrics-file FILE] [--slow-ms MS]

ARTIFACTS:
  `index` encodes the dataset and mines + persists its frequent lattice as
  checksummed artifacts under DIR; `analyze` re-analyzes from them with a
  streaming recount (no mining phase) — use the same --support/--engine as
  the index run so the registry key matches. `serve` answers NDJSON
  requests (register/mine/query/stats/metrics/trace/shutdown) on stdin,
  one JSON reply per line, caching lattices in memory and in DIR when given. Registry
  writes are crash-safe (temp file + fsync + atomic rename); a corrupt
  lattice artifact is quarantined (*.quarantine) and rebuilt by re-mining,
  and serve isolates every request (panics and expired deadlines fail
  soft, the loop continues).

OPTIONS:
  --artifact PATH    artifact file (probe) or registry directory (index,
                     analyze, serve)
  --name NAME        dataset name in the artifact registry
  --metric LIST      comma-separated metrics (FPR,FNR,ER,ACC,TPR,TNR,PPV,NPV,FDR,FOR) [FPR]
  --support S        minimum support threshold in (0,1] [0.05]
  --top K            rows to print [10]
  --bins B           quantile bins for numeric columns [3]
  --prune EPS        apply ε-redundancy pruning (explore)
  --fdr Q            keep only FDR-significant patterns at level Q (explore)
  --json             JSON output (explore)
  --itemset SPEC     target pattern, e.g. \"sex=Male,#prior=>3\" (shapley, lattice)
  --threshold T      lattice highlight threshold [0.1]
  --dot              emit Graphviz DOT (lattice)
  --timeout-ms MS    wall-clock budget for the exploration; on expiry the
                     partial results found so far are printed (exit code 4)
  --request-timeout-ms MS
                     per-request deadline for serve; an over-budget request
                     answers {\"ok\":false,...} and the loop continues
  --metrics-file FILE
                     serve: periodically snapshot the live metrics registry
                     to FILE as a Prometheus text exposition (atomic writes)
  --metrics-interval-ms MS
                     interval between --metrics-file snapshots [1000]
  --slow-ms MS       serve: a request taking >= MS dumps its flight-recorder
                     trace (full span tree) to stderr; panics and expired
                     deadlines always dump
  --max-itemsets N   stop after mining N itemsets (exit code 4 when hit)
  --max-depth D      do not explore itemsets longer than D (exit code 4)
  --trace-json FILE  stream telemetry (spans, counters, histograms) to FILE
                     as newline-delimited JSON
  --stats            print an aggregated telemetry summary to stderr
  --engine NAME      mining engine: apriori, fp-growth, eclat, eclat-bitset,
                     dense (class-mask popcount counting), or sharded
                     (two-pass partitioned mining) [fp-growth]
  --shards N         split the data into N row shards and mine through the
                     sharded two-pass engine; results are bit-identical to
                     a one-pass run but peak mining memory is roughly one
                     shard plus the candidate set
  --threads N        worker threads for mining and the sharded recount
                     pass [1]
  --prefetch D       load up to D shards ahead of the recount workers so
                     IO overlaps counting (needs --shards; 0 = inline) [0]
  --format F         index: dxd writes the dataset + lattice artifacts;
                     dxs additionally writes compressed columnar shards
                     (NAME.dxs) for out-of-core recounts [dxd]

EXIT CODES:
  0 success    2 usage error    3 bad input    4 truncated by budget
";

impl Args {
    /// Parses arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, CliError> {
        let mut it = argv.into_iter().peekable();
        let command = match it.next().as_deref() {
            Some("explore") => Command::Explore,
            Some("shapley") => Command::Shapley,
            Some("corrective") => Command::Corrective,
            Some("global") => Command::Global,
            Some("lattice") => Command::Lattice,
            Some("fairness") => Command::Fairness,
            Some("probe") => Command::Probe,
            Some("index") => Command::Index,
            Some("analyze") => Command::Analyze,
            Some("serve") => Command::Serve,
            Some(other) => return Err(CliError::Usage(format!("unknown command '{other}'"))),
            None => return Err(CliError::Usage("missing command".to_string())),
        };
        let mut args = Args {
            command,
            input: String::new(),
            label: String::new(),
            pred: String::new(),
            metrics: vec![Metric::FalsePositiveRate],
            support: 0.05,
            top: 10,
            bins: 3,
            prune: None,
            fdr: None,
            json: false,
            itemset: Vec::new(),
            threshold: 0.1,
            dot: false,
            timeout_ms: None,
            request_timeout_ms: None,
            metrics_file: None,
            metrics_interval_ms: 1_000,
            slow_ms: None,
            max_itemsets: None,
            max_depth: None,
            trace_json: None,
            stats: false,
            engine: fpm::Algorithm::FpGrowth,
            shards: None,
            threads: 1,
            prefetch: 0,
            artifact: String::new(),
            name: String::new(),
            format: IndexFormat::Dxd,
        };
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<String, CliError> {
                it.next()
                    .ok_or_else(|| CliError::Usage(format!("{name} needs a value")))
            };
            match flag.as_str() {
                "--input" => args.input = value("--input")?,
                "--label" => args.label = value("--label")?,
                "--pred" => args.pred = value("--pred")?,
                "--metric" => args.metrics = parse_metrics(&value("--metric")?)?,
                "--support" => args.support = parse_num(&value("--support")?, "--support")?,
                "--top" => args.top = parse_num::<usize>(&value("--top")?, "--top")?,
                "--bins" => args.bins = parse_num::<usize>(&value("--bins")?, "--bins")?,
                "--prune" => args.prune = Some(parse_num(&value("--prune")?, "--prune")?),
                "--fdr" => args.fdr = Some(parse_num(&value("--fdr")?, "--fdr")?),
                "--json" => args.json = true,
                "--itemset" => args.itemset = parse_itemset_spec(&value("--itemset")?)?,
                "--threshold" => args.threshold = parse_num(&value("--threshold")?, "--threshold")?,
                "--dot" => args.dot = true,
                "--timeout-ms" => {
                    args.timeout_ms = Some(parse_num(&value("--timeout-ms")?, "--timeout-ms")?)
                }
                "--request-timeout-ms" => {
                    args.request_timeout_ms = Some(parse_num(
                        &value("--request-timeout-ms")?,
                        "--request-timeout-ms",
                    )?)
                }
                "--metrics-file" => args.metrics_file = Some(value("--metrics-file")?),
                "--metrics-interval-ms" => {
                    args.metrics_interval_ms =
                        parse_num(&value("--metrics-interval-ms")?, "--metrics-interval-ms")?
                }
                "--slow-ms" => args.slow_ms = Some(parse_num(&value("--slow-ms")?, "--slow-ms")?),
                "--max-itemsets" => {
                    args.max_itemsets =
                        Some(parse_num(&value("--max-itemsets")?, "--max-itemsets")?)
                }
                "--max-depth" => {
                    args.max_depth = Some(parse_num(&value("--max-depth")?, "--max-depth")?)
                }
                "--trace-json" => args.trace_json = Some(value("--trace-json")?),
                "--stats" => args.stats = true,
                "--engine" => args.engine = parse_engine(&value("--engine")?)?,
                "--shards" => {
                    let n = parse_num::<usize>(&value("--shards")?, "--shards")?;
                    if n == 0 {
                        return Err(CliError::Usage("--shards must be at least 1".to_string()));
                    }
                    args.shards = Some(n);
                }
                "--threads" => {
                    let n = parse_num::<usize>(&value("--threads")?, "--threads")?;
                    if n == 0 {
                        return Err(CliError::Usage("--threads must be at least 1".to_string()));
                    }
                    args.threads = n;
                }
                "--prefetch" => {
                    args.prefetch = parse_num::<usize>(&value("--prefetch")?, "--prefetch")?;
                }
                "--artifact" => args.artifact = value("--artifact")?,
                "--name" => args.name = value("--name")?,
                "--format" => args.format = parse_format(&value("--format")?)?,
                other => return Err(CliError::Usage(format!("unknown flag '{other}'"))),
            }
        }
        // Required flags are per-command: artifact commands read from
        // the registry instead of (or in addition to) a CSV.
        match command {
            Command::Probe => {
                if args.artifact.is_empty() {
                    return Err(CliError::Usage(
                        "--artifact FILE is required for probe".to_string(),
                    ));
                }
            }
            Command::Analyze => {
                if args.artifact.is_empty() || args.name.is_empty() {
                    return Err(CliError::Usage(
                        "--artifact DIR and --name are required for analyze".to_string(),
                    ));
                }
            }
            Command::Serve => {}
            _ => {
                if args.input.is_empty() {
                    return Err(CliError::Usage("--input is required".to_string()));
                }
                if args.label.is_empty() || args.pred.is_empty() {
                    return Err(CliError::Usage(
                        "--label and --pred are required".to_string(),
                    ));
                }
                if command == Command::Index && (args.artifact.is_empty() || args.name.is_empty()) {
                    return Err(CliError::Usage(
                        "--artifact DIR and --name are required for index".to_string(),
                    ));
                }
                if matches!(command, Command::Shapley | Command::Lattice) && args.itemset.is_empty()
                {
                    return Err(CliError::Usage(
                        "--itemset is required for this command".to_string(),
                    ));
                }
            }
        }
        Ok(args)
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, CliError> {
    s.parse()
        .map_err(|_| CliError::Usage(format!("{flag}: cannot parse '{s}'")))
}

fn parse_format(s: &str) -> Result<IndexFormat, CliError> {
    match s.trim().to_ascii_lowercase().as_str() {
        "dxd" => Ok(IndexFormat::Dxd),
        "dxs" => Ok(IndexFormat::Dxs),
        other => Err(CliError::Usage(format!(
            "unknown artifact format '{other}' (expected dxd or dxs)"
        ))),
    }
}

pub(crate) fn parse_engine(s: &str) -> Result<fpm::Algorithm, CliError> {
    match s.trim().to_ascii_lowercase().as_str() {
        "apriori" => Ok(fpm::Algorithm::Apriori),
        "fp-growth" => Ok(fpm::Algorithm::FpGrowth),
        "eclat" => Ok(fpm::Algorithm::Eclat),
        "eclat-bitset" => Ok(fpm::Algorithm::EclatBitset),
        "dense" => Ok(fpm::Algorithm::Dense),
        "sharded" => Ok(fpm::Algorithm::Sharded),
        other => Err(CliError::Usage(format!(
            "unknown engine '{other}' (expected apriori, fp-growth, eclat, \
             eclat-bitset, dense, or sharded)"
        ))),
    }
}

pub(crate) fn parse_metrics(s: &str) -> Result<Vec<Metric>, CliError> {
    s.split(',')
        .map(|name| match name.trim().to_ascii_uppercase().as_str() {
            "FPR" => Ok(Metric::FalsePositiveRate),
            "FNR" => Ok(Metric::FalseNegativeRate),
            "ER" => Ok(Metric::ErrorRate),
            "ACC" => Ok(Metric::Accuracy),
            "TPR" => Ok(Metric::TruePositiveRate),
            "TNR" => Ok(Metric::TrueNegativeRate),
            "PPV" => Ok(Metric::PositivePredictiveValue),
            "NPV" => Ok(Metric::NegativePredictiveValue),
            "FDR" => Ok(Metric::FalseDiscoveryRate),
            "FOR" => Ok(Metric::FalseOmissionRate),
            other => Err(CliError::Usage(format!("unknown metric '{other}'"))),
        })
        .collect()
}

fn parse_itemset_spec(s: &str) -> Result<Vec<(String, String)>, CliError> {
    s.split(',')
        .map(|pair| {
            let (attr, value) = pair
                .split_once('=')
                .ok_or_else(|| CliError::Usage(format!("bad itemset element '{pair}'")))?;
            Ok((attr.trim().to_string(), value.trim().to_string()))
        })
        .collect()
}

/// The analysis input assembled from a CSV.
pub struct Prepared {
    /// Feature table (label/pred columns removed).
    pub data: DiscreteDataset,
    /// Ground truth.
    pub v: Vec<bool>,
    /// Predictions.
    pub u: Vec<bool>,
}

/// Builds the dataset from CSV *content* (exposed for tests; `run_with_content`
/// drives it).
pub fn prepare(content: &str, args: &Args) -> Result<Prepared, CliError> {
    let table = parse_csv(content, ',').map_err(|e| CliError::Input(e.to_string()))?;
    let label_col = column_index(&table, &args.label)?;
    let pred_col = column_index(&table, &args.pred)?;
    let v = parse_bool_column(&table.columns[label_col], &args.label)?;
    let u = parse_bool_column(&table.columns[pred_col], &args.pred)?;

    let mut header = Vec::new();
    let mut columns = Vec::new();
    for (i, name) in table.header.iter().enumerate() {
        if i != label_col && i != pred_col {
            header.push(name.clone());
            columns.push(table.columns[i].clone());
        }
    }
    if header.is_empty() {
        return Err(CliError::Input("no feature columns left".to_string()));
    }
    let data = CsvTable { header, columns }
        .into_dataset(args.bins)
        .map_err(|e| CliError::Input(e.to_string()))?;
    Ok(Prepared { data, v, u })
}

fn column_index(table: &CsvTable, name: &str) -> Result<usize, CliError> {
    table
        .header
        .iter()
        .position(|h| h == name)
        .ok_or_else(|| CliError::Input(format!("column '{name}' not found")))
}

fn parse_bool_column(column: &[String], name: &str) -> Result<Vec<bool>, CliError> {
    column
        .iter()
        .map(|cell| match cell.trim().to_ascii_lowercase().as_str() {
            "1" | "true" | "t" | "yes" => Ok(true),
            "0" | "false" | "f" | "no" => Ok(false),
            other => Err(CliError::Input(format!(
                "column '{name}': cannot parse '{other}' as a boolean"
            ))),
        })
        .collect()
}

/// Resolves an `attr=value` spec against the schema.
fn resolve_itemset(
    data: &DiscreteDataset,
    spec: &[(String, String)],
) -> Result<Vec<ItemId>, CliError> {
    let mut items: Vec<ItemId> = spec
        .iter()
        .map(|(attr, value)| {
            data.schema()
                .item_by_name(attr, value)
                .ok_or_else(|| CliError::Input(format!("unknown item {attr}={value}")))
        })
        .collect::<Result<_, _>>()?;
    items.sort_unstable();
    Ok(items)
}

/// Telemetry sinks requested on the command line (`--trace-json`,
/// `--stats`), installed on the global [`obs`] facade for the duration
/// of one run.
pub struct Telemetry {
    stats: Option<std::sync::Arc<obs::StatsRecorder>>,
    installed: bool,
}

impl Telemetry {
    /// Opens the trace file (if any) and installs the requested
    /// recorders. With neither flag set this is a no-op and telemetry
    /// stays disabled — the zero-overhead path.
    pub fn install(args: &Args) -> Result<Telemetry, CliError> {
        use std::sync::Arc;
        let mut recorders: Vec<Arc<dyn obs::Recorder>> = Vec::new();
        if let Some(path) = &args.trace_json {
            let file =
                std::fs::File::create(path).map_err(|e| CliError::Input(format!("{path}: {e}")))?;
            recorders.push(Arc::new(obs::NdjsonRecorder::new(std::io::BufWriter::new(
                file,
            ))));
        }
        let stats = if args.stats {
            let recorder = Arc::new(obs::StatsRecorder::new());
            recorders.push(recorder.clone());
            Some(recorder)
        } else {
            None
        };
        let installed = !recorders.is_empty();
        if installed {
            let recorder: Arc<dyn obs::Recorder> = if recorders.len() == 1 {
                recorders.pop().expect("just checked non-empty")
            } else {
                Arc::new(obs::Tee(recorders))
            };
            obs::install(recorder);
        }
        Ok(Telemetry { stats, installed })
    }

    /// Uninstalls the recorders (flushing the trace file) and renders
    /// the `--stats` summary, if one was requested.
    pub fn finish(self) -> Option<String> {
        if self.installed {
            obs::uninstall();
        }
        self.stats.map(|recorder| recorder.snapshot().render())
    }
}

/// The [`fpm::Budget`] requested on the command line.
pub(crate) fn budget_from_args(args: &Args) -> fpm::Budget {
    let mut budget = fpm::Budget::unlimited();
    if let Some(ms) = args.timeout_ms {
        budget = budget.with_timeout(std::time::Duration::from_millis(ms));
    }
    if let Some(n) = args.max_itemsets {
        budget = budget.with_max_itemsets(n);
    }
    if let Some(d) = args.max_depth {
        budget = budget.with_max_depth(d);
    }
    budget
}

/// The [`DivExplorer`] configured by the command line — shared by the
/// cold path ([`run_with_content`]), `index` and `analyze`.
pub(crate) fn explorer_from_args(args: &Args) -> DivExplorer {
    let mut explorer = DivExplorer::new(args.support)
        .with_algorithm(args.engine)
        .with_threads(args.threads)
        .with_prefetch(args.prefetch)
        .with_budget(budget_from_args(args));
    if let Some(k) = args.shards {
        explorer = explorer.with_shards(k);
    }
    explorer
}

/// Renders an `explore`-style report (table or `--json`) including the
/// truncation warning, and maps the report's completeness to the run
/// status. Shared by the cold `explore` path and `analyze --artifact`.
pub(crate) fn render_explore(
    args: &Args,
    report: &divexplorer::DivergenceReport,
    out: &mut String,
) -> Result<RunStatus, CliError> {
    if args.json {
        let export = report.export();
        let json = serde_json::to_string_pretty(&export)
            .map_err(|e| CliError::Input(format!("cannot serialize report: {e}")))?;
        out.push_str(&json);
        out.push('\n');
        return Ok(match report.completeness().truncation_reason() {
            Some(reason) => RunStatus::Truncated(reason),
            None => RunStatus::Complete,
        });
    }
    for (m, metric) in args.metrics.iter().enumerate() {
        let _ = writeln!(
            out,
            "Δ_{metric} (overall {metric} = {:.3}, {} patterns):",
            report.dataset_rate(m),
            report.len()
        );
        let kept: Option<std::collections::HashSet<usize>> = match (args.prune, args.fdr) {
            (Some(eps), _) => Some(prune_redundant(report, m, eps).into_iter().collect()),
            (None, Some(q)) => Some(report.significant_at_fdr(m, q).into_iter().collect()),
            (None, None) => None,
        };
        let mut shown = 0;
        for idx in report.ranked(m, SortBy::Divergence) {
            if let Some(kept) = &kept {
                if !kept.contains(&idx) {
                    continue;
                }
            }
            let _ = writeln!(
                out,
                "  {:<55} sup={:.2} Δ={:+.3} t={:.1}",
                report.display_itemset(report.items(idx)),
                report.support_fraction(idx),
                report.divergence(idx, m),
                report.t_statistic(idx, m),
            );
            shown += 1;
            if shown >= args.top {
                break;
            }
        }
    }
    Ok(completeness_status(report, out))
}

/// The shared completeness tail: prints the truncation warning (naming
/// the cut shard phase when one applies) and returns the status.
fn completeness_status(report: &divexplorer::DivergenceReport, out: &mut String) -> RunStatus {
    match *report.completeness() {
        fpm::Completeness::Truncated {
            reason,
            emitted,
            elapsed,
        } => {
            // Report the miner's own verdict verbatim (reason, itemsets
            // kept, wall clock) so partial results are auditable. A
            // sharded run additionally names the phase the budget cut —
            // a mine-phase cut lost candidates, a recount-phase cut lost
            // every result (the engine never emits unverified counts).
            let phase_note = report
                .shard_stats()
                .and_then(|s| s.truncated_phase)
                .map(|phase| format!("; the {phase} phase was cut"))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "warning: exploration truncated ({reason}) after {emitted} itemsets \
                 in {:.1}ms{phase_note} — results above are partial",
                elapsed.as_secs_f64() * 1e3
            );
            RunStatus::Truncated(reason)
        }
        fpm::Completeness::Complete => RunStatus::Complete,
    }
}

/// Runs the command against CSV content, writing the report to `out`.
///
/// Commands that tolerate a budget-truncated exploration (explore,
/// corrective, lattice) print the partial results and return
/// [`RunStatus::Truncated`]; closure-dependent commands (shapley, global)
/// refuse truncated input with [`CliError::Truncated`].
pub fn run_with_content(
    args: &Args,
    content: &str,
    out: &mut String,
) -> Result<RunStatus, CliError> {
    match args.command {
        Command::Index => {
            artifacts::run_index(args, content, out)?;
            return Ok(RunStatus::Complete);
        }
        Command::Probe | Command::Analyze | Command::Serve => {
            return Err(CliError::Usage(
                "this command does not analyze CSV content".to_string(),
            ));
        }
        _ => {}
    }
    let prepared = prepare(content, args)?;
    if args.command == Command::Fairness {
        run_fairness(args, &prepared, out)?;
        return Ok(RunStatus::Complete);
    }
    let explorer = explorer_from_args(args);
    let report = explorer
        .explore(&prepared.data, &prepared.v, &prepared.u, &args.metrics)
        .map_err(|e| CliError::Input(e.to_string()))?;
    let truncation = report.completeness().truncation_reason();

    match args.command {
        Command::Explore => return render_explore(args, &report, out),
        Command::Shapley => {
            if let Some(reason) = truncation {
                return Err(CliError::Truncated(reason));
            }
            let items = resolve_itemset(&prepared.data, &args.itemset)?;
            let idx = report
                .find(&items)
                .ok_or_else(|| CliError::Input("itemset is not frequent".to_string()))?;
            let _ = writeln!(
                out,
                "{}  Δ = {:+.3}",
                report.display_itemset(&items),
                report.divergence(idx, 0)
            );
            let contributions = item_contributions(&report, &items, 0)
                .map_err(|e| CliError::Input(e.to_string()))?;
            for (item, c) in contributions {
                let _ = writeln!(out, "  {:<40} {c:+.3}", report.schema().display_item(item));
            }
        }
        Command::Corrective => {
            for c in top_corrective(&report, 0, args.top, None) {
                let _ = writeln!(
                    out,
                    "  {} + {}  |Δ| {:.3} → {:.3} (c_f {:.3}, t {:.1})",
                    report.display_itemset(&c.base),
                    report.schema().display_item(c.item),
                    c.delta_base.abs(),
                    c.delta_extended.abs(),
                    c.corrective_factor,
                    c.t,
                );
            }
        }
        Command::Global => {
            let mut globals =
                global_item_divergence_checked(&report, 0).map_err(CliError::Truncated)?;
            globals.sort_by(|a, b| b.1.total_cmp(&a.1));
            for (item, g) in globals.into_iter().take(args.top) {
                let _ = writeln!(out, "  {:<40} {g:+.5}", report.schema().display_item(item));
            }
        }
        Command::Lattice => {
            let items = resolve_itemset(&prepared.data, &args.itemset)?;
            let lattice = sublattice(&report, &items, 0, args.threshold)
                .map_err(|e| CliError::Input(e.to_string()))?;
            out.push_str(&if args.dot {
                lattice.to_dot()
            } else {
                lattice.to_ascii()
            });
        }
        Command::Fairness | Command::Probe | Command::Index | Command::Analyze | Command::Serve => {
            unreachable!("dispatched before exploration")
        }
    }
    Ok(completeness_status(&report, out))
}

fn run_fairness(args: &Args, prepared: &Prepared, out: &mut String) -> Result<(), CliError> {
    let audit = audit_fairness(&prepared.data, &prepared.v, &prepared.u, args.support)
        .map_err(|e| CliError::Input(e.to_string()))?;
    let _ = writeln!(
        out,
        "{} subgroups scored against 4 criteria",
        audit.violations.len()
    );
    for criterion in Criterion::ALL {
        let _ = writeln!(out, "\nworst by {}:", criterion.name());
        for violation in audit.worst(criterion, args.top.min(5)) {
            let _ = writeln!(
                out,
                "  {:<50} deviation {:+.3} (sup {:.2})",
                audit.report.display_itemset(&violation.items),
                violation.deviation(criterion),
                violation.support,
            );
        }
    }
    Ok(())
}

/// Entry point for the binary: installs the requested telemetry, reads
/// the input file and runs the command. Returns the rendered output,
/// the run's [`RunStatus`] and the `--stats` summary (if requested) —
/// the telemetry recorders are always uninstalled before returning.
pub fn run(args: &Args) -> Result<(String, RunStatus, Option<String>), CliError> {
    let telemetry = Telemetry::install(args)?;
    let outcome = run_dispatch(args);
    let summary = telemetry.finish();
    outcome.map(|(out, status)| (out, status, summary))
}

fn run_dispatch(args: &Args) -> Result<(String, RunStatus), CliError> {
    let mut out = String::new();
    match args.command {
        // Artifact commands don't read a CSV; `serve` streams responses
        // straight to stdout (one per request) instead of returning them.
        Command::Probe => {
            artifacts::run_probe(args, &mut out)?;
            Ok((out, RunStatus::Complete))
        }
        Command::Analyze => {
            let status = artifacts::run_analyze(args, &mut out)?;
            Ok((out, status))
        }
        Command::Serve => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            serve::serve_loop(args, stdin.lock(), stdout.lock())?;
            Ok((String::new(), RunStatus::Complete))
        }
        _ => {
            let content = std::fs::read_to_string(&args.input)
                .map_err(|e| CliError::Input(format!("{}: {e}", args.input)))?;
            let status = run_with_content(args, &content, &mut out)?;
            Ok((out, status))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CSV: &str = "\
grp,other,y,yhat
a,x,0,1
a,y,0,1
a,x,0,1
a,y,0,0
b,x,0,0
b,y,0,0
b,x,0,0
b,y,0,1
";

    fn base_args(command: &str) -> Vec<String> {
        [
            command,
            "--input",
            "mem.csv",
            "--label",
            "y",
            "--pred",
            "yhat",
            "--support",
            "0.25",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    #[test]
    fn parse_requires_command_and_io_flags() {
        assert!(matches!(
            Args::parse(Vec::<String>::new()),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            Args::parse(vec!["explore".to_string()]),
            Err(CliError::Usage(_))
        ));
        let args = Args::parse(base_args("explore")).unwrap();
        assert_eq!(args.command, Command::Explore);
        assert_eq!(args.support, 0.25);
    }

    #[test]
    fn parse_rejects_unknown_flags_metrics_and_specs() {
        let mut argv = base_args("explore");
        argv.push("--bogus".to_string());
        assert!(matches!(Args::parse(argv), Err(CliError::Usage(_))));

        let mut argv = base_args("explore");
        argv.extend(["--metric".to_string(), "NOPE".to_string()]);
        assert!(matches!(Args::parse(argv), Err(CliError::Usage(_))));

        let mut argv = base_args("shapley");
        argv.extend(["--itemset".to_string(), "broken".to_string()]);
        assert!(matches!(Args::parse(argv), Err(CliError::Usage(_))));
    }

    #[test]
    fn explore_prints_the_divergent_group_first() {
        let args = Args::parse(base_args("explore")).unwrap();
        let mut out = String::new();
        run_with_content(&args, CSV, &mut out).unwrap();
        // The pair (grp=a, other=x) has FPR 1.0 vs overall 0.5 and tops
        // the ranking; the single grp=a (Δ = +0.25) must also appear.
        let first_row = out.lines().nth(1).unwrap();
        assert!(first_row.contains("grp=a"), "got: {first_row}");
        assert!(first_row.contains("Δ=+0.500"), "got: {first_row}");
        assert!(out.contains("Δ=+0.250"));
    }

    #[test]
    fn explore_json_emits_a_parsable_export() {
        let mut argv = base_args("explore");
        argv.push("--json".to_string());
        let args = Args::parse(argv).unwrap();
        let mut out = String::new();
        run_with_content(&args, CSV, &mut out).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(parsed["metrics"][0], "FPR");
        assert!(parsed["patterns"].as_array().unwrap().len() > 2);
    }

    #[test]
    fn shapley_command_attributes_the_pair() {
        let mut argv = base_args("shapley");
        argv.extend(["--itemset".to_string(), "grp=a,other=x".to_string()]);
        let args = Args::parse(argv).unwrap();
        let mut out = String::new();
        run_with_content(&args, CSV, &mut out).unwrap();
        assert!(out.contains("grp=a, other=x"));
        assert!(out.contains("grp=a") && out.contains("other=x"));
    }

    #[test]
    fn lattice_command_renders_ascii_and_dot() {
        let mut argv = base_args("lattice");
        argv.extend(["--itemset".to_string(), "grp=a,other=x".to_string()]);
        let args = Args::parse(argv.clone()).unwrap();
        let mut out = String::new();
        run_with_content(&args, CSV, &mut out).unwrap();
        assert!(out.contains("level 0:"));

        argv.push("--dot".to_string());
        let args = Args::parse(argv).unwrap();
        let mut out = String::new();
        run_with_content(&args, CSV, &mut out).unwrap();
        assert!(out.starts_with("digraph"));
    }

    #[test]
    fn unknown_columns_and_items_error_cleanly() {
        let mut argv = base_args("explore");
        argv[4] = "nope".to_string(); // --label value
        let args = Args::parse(argv).unwrap();
        let mut out = String::new();
        assert!(matches!(
            run_with_content(&args, CSV, &mut out),
            Err(CliError::Input(_))
        ));

        let mut argv = base_args("shapley");
        argv.extend(["--itemset".to_string(), "grp=zzz".to_string()]);
        let args = Args::parse(argv).unwrap();
        let mut out = String::new();
        assert!(matches!(
            run_with_content(&args, CSV, &mut out),
            Err(CliError::Input(_))
        ));
    }

    #[test]
    fn fairness_command_scores_criteria() {
        let args = Args::parse(base_args("fairness")).unwrap();
        let mut out = String::new();
        run_with_content(&args, CSV, &mut out).unwrap();
        assert!(out.contains("worst by demographic parity"));
        assert!(out.contains("worst by equalized odds"));
        assert!(out.contains("grp="));
    }

    #[test]
    fn corrective_and_global_commands_run() {
        for cmd in ["corrective", "global"] {
            let args = Args::parse(base_args(cmd)).unwrap();
            let mut out = String::new();
            run_with_content(&args, CSV, &mut out).unwrap();
        }
    }

    #[test]
    fn budget_flags_parse() {
        let mut argv = base_args("explore");
        argv.extend([
            "--timeout-ms".to_string(),
            "250".to_string(),
            "--max-itemsets".to_string(),
            "100".to_string(),
            "--max-depth".to_string(),
            "2".to_string(),
        ]);
        let args = Args::parse(argv).unwrap();
        assert_eq!(args.timeout_ms, Some(250));
        assert_eq!(args.max_itemsets, Some(100));
        assert_eq!(args.max_depth, Some(2));

        let mut argv = base_args("explore");
        argv.extend(["--timeout-ms".to_string(), "soon".to_string()]);
        assert!(matches!(Args::parse(argv), Err(CliError::Usage(_))));
    }

    #[test]
    fn engine_flag_parses_and_rejects_unknown_names() {
        let args = Args::parse(base_args("explore")).unwrap();
        assert_eq!(args.engine, fpm::Algorithm::FpGrowth);

        for (name, algo) in [
            ("apriori", fpm::Algorithm::Apriori),
            ("fp-growth", fpm::Algorithm::FpGrowth),
            ("eclat", fpm::Algorithm::Eclat),
            ("eclat-bitset", fpm::Algorithm::EclatBitset),
            ("dense", fpm::Algorithm::Dense),
            ("sharded", fpm::Algorithm::Sharded),
        ] {
            let mut argv = base_args("explore");
            argv.extend(["--engine".to_string(), name.to_string()]);
            assert_eq!(Args::parse(argv).unwrap().engine, algo, "{name}");
        }

        let mut argv = base_args("explore");
        argv.extend(["--engine".to_string(), "quantum".to_string()]);
        assert!(matches!(Args::parse(argv), Err(CliError::Usage(_))));
    }

    #[test]
    fn every_engine_prints_the_same_explore_report() {
        let reference = {
            let args = Args::parse(base_args("explore")).unwrap();
            let mut out = String::new();
            run_with_content(&args, CSV, &mut out).unwrap();
            out
        };
        for name in ["apriori", "eclat", "eclat-bitset", "dense", "sharded"] {
            let mut argv = base_args("explore");
            argv.extend(["--engine".to_string(), name.to_string()]);
            let args = Args::parse(argv).unwrap();
            let mut out = String::new();
            run_with_content(&args, CSV, &mut out).unwrap();
            assert_eq!(out, reference, "engine {name}");
        }
    }

    #[test]
    fn unbudgeted_run_reports_complete_status() {
        let args = Args::parse(base_args("explore")).unwrap();
        let mut out = String::new();
        let status = run_with_content(&args, CSV, &mut out).unwrap();
        assert_eq!(status, RunStatus::Complete);
        assert_eq!(status.exit_code(), 0);
        assert!(!out.contains("warning"));
    }

    #[test]
    fn truncated_explore_prints_partial_results_and_a_warning() {
        let mut argv = base_args("explore");
        argv.extend(["--max-itemsets".to_string(), "2".to_string()]);
        let args = Args::parse(argv).unwrap();
        let mut out = String::new();
        let status = run_with_content(&args, CSV, &mut out).unwrap();
        assert_eq!(
            status,
            RunStatus::Truncated(fpm::TruncationReason::ItemsetLimit)
        );
        assert_eq!(status.exit_code(), 4);
        assert!(out.contains("2 patterns"), "got: {out}");
        assert!(out.contains("warning: exploration truncated"), "got: {out}");
    }

    #[test]
    fn truncation_warning_reports_the_miner_emitted_count() {
        // The warning's itemset count must come from the miner's own
        // Completeness verdict and agree with the patterns printed:
        // the exit-4 path must not under- or over-report what was kept.
        for limit in [1usize, 2, 3] {
            let mut argv = base_args("explore");
            argv.extend(["--max-itemsets".to_string(), limit.to_string()]);
            let args = Args::parse(argv).unwrap();
            let mut out = String::new();
            let status = run_with_content(&args, CSV, &mut out).unwrap();
            assert_eq!(
                status,
                RunStatus::Truncated(fpm::TruncationReason::ItemsetLimit)
            );
            assert!(
                out.contains(&format!("{limit} patterns")),
                "limit {limit}: got: {out}"
            );
            assert!(
                out.contains(&format!("after {limit} itemsets")),
                "limit {limit}: got: {out}"
            );
        }
    }

    #[test]
    fn closure_dependent_commands_refuse_truncated_input() {
        for cmd in ["shapley", "global"] {
            let mut argv = base_args(cmd);
            argv.extend(["--max-itemsets".to_string(), "2".to_string()]);
            if cmd == "shapley" {
                argv.extend(["--itemset".to_string(), "grp=a".to_string()]);
            }
            let args = Args::parse(argv).unwrap();
            let mut out = String::new();
            let err = run_with_content(&args, CSV, &mut out).unwrap_err();
            assert_eq!(
                err,
                CliError::Truncated(fpm::TruncationReason::ItemsetLimit),
                "{cmd}"
            );
            assert_eq!(err.exit_code(), 4, "{cmd}");
        }
    }

    #[test]
    fn depth_capped_explore_shows_only_short_patterns() {
        let mut argv = base_args("explore");
        argv.extend(["--max-depth".to_string(), "1".to_string()]);
        let args = Args::parse(argv).unwrap();
        let mut out = String::new();
        let status = run_with_content(&args, CSV, &mut out).unwrap();
        assert_eq!(
            status,
            RunStatus::Truncated(fpm::TruncationReason::DepthLimit)
        );
        // No pattern line mentions two attributes.
        assert!(!out.contains("grp=a, other="), "got: {out}");
    }

    #[test]
    fn shards_flag_parses_and_rejects_zero() {
        let mut argv = base_args("explore");
        argv.extend(["--shards".to_string(), "3".to_string()]);
        assert_eq!(Args::parse(argv).unwrap().shards, Some(3));

        let mut argv = base_args("explore");
        argv.extend(["--shards".to_string(), "0".to_string()]);
        assert!(matches!(Args::parse(argv), Err(CliError::Usage(_))));
    }

    #[test]
    fn sharded_explore_matches_the_default_engine() {
        let reference = {
            let args = Args::parse(base_args("explore")).unwrap();
            let mut out = String::new();
            run_with_content(&args, CSV, &mut out).unwrap();
            out
        };
        for shards in ["1", "2", "5"] {
            let mut argv = base_args("explore");
            argv.extend(["--shards".to_string(), shards.to_string()]);
            let args = Args::parse(argv).unwrap();
            let mut out = String::new();
            let status = run_with_content(&args, CSV, &mut out).unwrap();
            assert_eq!(status, RunStatus::Complete, "shards {shards}");
            assert_eq!(out, reference, "shards {shards}");
        }
    }

    #[test]
    fn threads_and_prefetch_flags_parse_and_reject_bad_values() {
        let mut argv = base_args("explore");
        argv.extend([
            "--threads".to_string(),
            "4".to_string(),
            "--prefetch".to_string(),
            "2".to_string(),
        ]);
        let args = Args::parse(argv).unwrap();
        assert_eq!(args.threads, 4);
        assert_eq!(args.prefetch, 2);

        let mut argv = base_args("explore");
        argv.extend(["--threads".to_string(), "0".to_string()]);
        assert!(matches!(Args::parse(argv), Err(CliError::Usage(_))));

        let mut argv = base_args("explore");
        argv.extend(["--prefetch".to_string(), "nope".to_string()]);
        assert!(matches!(Args::parse(argv), Err(CliError::Usage(_))));
    }

    #[test]
    fn piped_sharded_explore_matches_the_default_engine() {
        let reference = {
            let args = Args::parse(base_args("explore")).unwrap();
            let mut out = String::new();
            run_with_content(&args, CSV, &mut out).unwrap();
            out
        };
        for (threads, prefetch) in [("4", "0"), ("1", "2"), ("4", "2")] {
            let mut argv = base_args("explore");
            argv.extend([
                "--shards".to_string(),
                "3".to_string(),
                "--threads".to_string(),
                threads.to_string(),
                "--prefetch".to_string(),
                prefetch.to_string(),
            ]);
            let args = Args::parse(argv).unwrap();
            let mut out = String::new();
            let status = run_with_content(&args, CSV, &mut out).unwrap();
            assert_eq!(status, RunStatus::Complete, "t={threads} d={prefetch}");
            assert_eq!(out, reference, "t={threads} d={prefetch}");
        }
    }

    #[test]
    fn truncated_sharded_run_names_the_cut_phase() {
        // An already-expired deadline trips in the mine phase; the
        // warning must say which phase was lost, not just the count.
        let mut argv = base_args("explore");
        argv.extend([
            "--shards".to_string(),
            "2".to_string(),
            "--timeout-ms".to_string(),
            "0".to_string(),
        ]);
        let args = Args::parse(argv).unwrap();
        let mut out = String::new();
        let status = run_with_content(&args, CSV, &mut out).unwrap();
        assert_eq!(status, RunStatus::Truncated(fpm::TruncationReason::Timeout));
        assert_eq!(status.exit_code(), 4);
        assert!(out.contains("the mine phase was cut"), "got: {out}");

        // A plain (unsharded) truncated run keeps the old message shape.
        let mut argv = base_args("explore");
        argv.extend(["--max-itemsets".to_string(), "2".to_string()]);
        let args = Args::parse(argv).unwrap();
        let mut out = String::new();
        run_with_content(&args, CSV, &mut out).unwrap();
        assert!(!out.contains("phase was cut"), "got: {out}");
    }

    fn artifact_temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cli-artifact-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn index_args(dir: &std::path::Path) -> Vec<String> {
        let mut argv = base_args("index");
        argv.extend([
            "--name".to_string(),
            "toy".to_string(),
            "--artifact".to_string(),
            dir.to_str().unwrap().to_string(),
        ]);
        argv
    }

    #[test]
    fn artifact_commands_validate_their_required_flags() {
        // probe/analyze need --artifact (and --name), not --input.
        assert!(matches!(
            Args::parse(vec!["probe".to_string()]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            Args::parse(vec![
                "analyze".to_string(),
                "--artifact".to_string(),
                "dir".to_string()
            ]),
            Err(CliError::Usage(_))
        ));
        // index additionally needs the CSV flags.
        assert!(matches!(
            Args::parse(base_args("index")),
            Err(CliError::Usage(_))
        ));
        // serve needs nothing.
        let args = Args::parse(vec!["serve".to_string()]).unwrap();
        assert_eq!(args.command, Command::Serve);
        let args = Args::parse(vec![
            "probe".to_string(),
            "--artifact".to_string(),
            "x.dxd".to_string(),
        ])
        .unwrap();
        assert_eq!(args.command, Command::Probe);
        assert_eq!(args.artifact, "x.dxd");
    }

    #[test]
    fn index_then_analyze_matches_the_cold_explore() {
        let dir = artifact_temp_dir("warm");
        let args = Args::parse(index_args(&dir)).unwrap();
        let mut index_out = String::new();
        run_with_content(&args, CSV, &mut index_out).unwrap();
        assert!(index_out.contains("dataset 'toy'"), "got: {index_out}");
        assert!(index_out.contains("lattice:"), "got: {index_out}");

        let cold = {
            let args = Args::parse(base_args("explore")).unwrap();
            let mut out = String::new();
            run_with_content(&args, CSV, &mut out).unwrap();
            out
        };
        let mut argv = vec![
            "analyze".to_string(),
            "--artifact".to_string(),
            dir.to_str().unwrap().to_string(),
            "--name".to_string(),
            "toy".to_string(),
            "--support".to_string(),
            "0.25".to_string(),
        ];
        let analyze = Args::parse(argv.clone()).unwrap();
        let mut warm = String::new();
        let status = artifacts::run_analyze(&analyze, &mut warm).unwrap();
        assert_eq!(status, RunStatus::Complete);
        assert_eq!(warm, cold, "recount must reproduce the cold explore");

        // A different metric recounts the same lattice.
        argv.extend(["--metric".to_string(), "FNR".to_string()]);
        let analyze = Args::parse(argv).unwrap();
        let mut fnr = String::new();
        artifacts::run_analyze(&analyze, &mut fnr).unwrap();
        assert!(fnr.contains("Δ_FNR"), "got: {fnr}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn index_format_dxs_writes_probeable_compressed_shards() {
        // Unknown formats are a usage error before any IO happens.
        let mut bad = index_args(std::path::Path::new("unused"));
        bad.extend(["--format".to_string(), "zip".to_string()]);
        assert!(matches!(Args::parse(bad), Err(CliError::Usage(_))));

        let dir = artifact_temp_dir("dxs");
        let mut argv = index_args(&dir);
        argv.extend([
            "--format".to_string(),
            "dxs".to_string(),
            "--shards".to_string(),
            "3".to_string(),
        ]);
        let args = Args::parse(argv).unwrap();
        let mut out = String::new();
        run_with_content(&args, CSV, &mut out).unwrap();
        assert!(out.contains("shards: 3 windows"), "got: {out}");

        let shards_path = dir.join("toy.dxs");
        let probe = Args::parse(vec![
            "probe".to_string(),
            "--artifact".to_string(),
            shards_path.to_str().unwrap().to_string(),
        ])
        .unwrap();
        let mut probed = String::new();
        artifacts::run_probe(&probe, &mut probed).unwrap();
        assert!(probed.contains("kind:     shards"), "got: {probed}");

        // The decoded shards reconstruct the indexed dataset exactly.
        use fpm::ShardSource as _;
        let source = datasets::artifact::load_shards(&shards_path).unwrap();
        let args = Args::parse(index_args(&dir)).unwrap();
        let prepared = prepare(CSV, &args).unwrap();
        let db = prepared.data.to_transactions();
        let mut seen = 0usize;
        for k in 0..source.n_shards() {
            let shard = source.open(k).materialize();
            for r in 0..shard.db.len() {
                assert_eq!(shard.db.transaction(r), db.transaction(shard.start_row + r));
            }
            seen += shard.db.len();
        }
        assert_eq!(seen, prepared.data.n_rows());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn probe_prints_the_artifact_header() {
        let dir = artifact_temp_dir("probe");
        let args = Args::parse(index_args(&dir)).unwrap();
        run_with_content(&args, CSV, &mut String::new()).unwrap();

        let probe = Args::parse(vec![
            "probe".to_string(),
            "--artifact".to_string(),
            dir.join("toy.dxd").to_str().unwrap().to_string(),
        ])
        .unwrap();
        let mut out = String::new();
        artifacts::run_probe(&probe, &mut out).unwrap();
        assert!(out.contains("kind:     dataset"), "got: {out}");
        assert!(out.contains("version:  1"), "got: {out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_tampered_lattice_artifact_is_quarantined_and_rebuilt() {
        let dir = artifact_temp_dir("tamper");
        let args = Args::parse(index_args(&dir)).unwrap();
        run_with_content(&args, CSV, &mut String::new()).unwrap();
        let cold = {
            let args = Args::parse(base_args("explore")).unwrap();
            let mut out = String::new();
            run_with_content(&args, CSV, &mut out).unwrap();
            out
        };
        let arena_file = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|x| x == "dxa"))
            .unwrap();
        let mut bytes = std::fs::read(&arena_file).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&arena_file, &bytes).unwrap();

        let analyze = Args::parse(vec![
            "analyze".to_string(),
            "--artifact".to_string(),
            dir.to_str().unwrap().to_string(),
            "--name".to_string(),
            "toy".to_string(),
            "--support".to_string(),
            "0.25".to_string(),
        ])
        .unwrap();
        // The poisoned lattice is quarantined and rebuilt from the
        // dataset artifact: the analysis still succeeds, with a warning,
        // and the output below the warning matches the cold explore.
        let mut out = String::new();
        let status = artifacts::run_analyze(&analyze, &mut out).unwrap();
        assert_eq!(status, RunStatus::Complete);
        let warning = out.lines().next().unwrap();
        assert!(warning.contains("checksum mismatch"), "got: {warning}");
        assert!(warning.contains("quarantined"), "got: {warning}");
        let body = out.split_once('\n').unwrap().1;
        assert_eq!(body, cold, "rebuilt recount must match the cold explore");
        // The poisoned bytes moved aside; the registry slot was rebuilt
        // and the next analyze is warm again (no warning).
        assert!(datasets::artifact::quarantine_path(&arena_file).exists());
        let mut again = String::new();
        artifacts::run_analyze(&analyze, &mut again).unwrap();
        assert_eq!(again, cold, "re-persisted artifact must load cleanly");

        // A missing arena (wrong support → different registry key) still
        // fails typed, with a hint to re-index: a key miss is a parameter
        // mismatch, not corruption.
        let mut missing = analyze.clone();
        missing.support = 0.5;
        let err = artifacts::run_analyze(&missing, &mut String::new()).unwrap_err();
        assert_eq!(err.exit_code(), 3);
        assert!(err.to_string().contains("index"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_tampered_dataset_artifact_still_fails_closed_with_exit_code_3() {
        let dir = artifact_temp_dir("tamper-dataset");
        let args = Args::parse(index_args(&dir)).unwrap();
        run_with_content(&args, CSV, &mut String::new()).unwrap();
        // Flip a byte in the *dataset* artifact: there is no deeper
        // source of truth on disk to rebuild it from, so analyze must
        // fail closed rather than quarantine.
        let dataset_file = dir.join("toy.dxd");
        let mut bytes = std::fs::read(&dataset_file).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&dataset_file, &bytes).unwrap();

        let analyze = Args::parse(vec![
            "analyze".to_string(),
            "--artifact".to_string(),
            dir.to_str().unwrap().to_string(),
            "--name".to_string(),
            "toy".to_string(),
            "--support".to_string(),
            "0.25".to_string(),
        ])
        .unwrap();
        let err = artifacts::run_analyze(&analyze, &mut String::new()).unwrap_err();
        assert!(matches!(err, CliError::Input(_)), "{err}");
        assert_eq!(err.exit_code(), 3);
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        assert!(
            !datasets::artifact::quarantine_path(&dataset_file).exists(),
            "dataset artifacts are never quarantined"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn request_timeout_flag_parses() {
        let args = Args::parse(vec![
            "serve".to_string(),
            "--request-timeout-ms".to_string(),
            "750".to_string(),
        ])
        .unwrap();
        assert_eq!(args.request_timeout_ms, Some(750));
        assert!(matches!(
            Args::parse(vec![
                "serve".to_string(),
                "--request-timeout-ms".to_string(),
                "soon".to_string(),
            ]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn index_refuses_to_persist_a_truncated_lattice() {
        let dir = artifact_temp_dir("truncated");
        let mut argv = index_args(&dir);
        argv.extend(["--max-itemsets".to_string(), "2".to_string()]);
        let args = Args::parse(argv).unwrap();
        let err = run_with_content(&args, CSV, &mut String::new()).unwrap_err();
        assert_eq!(
            err,
            CliError::Truncated(fpm::TruncationReason::ItemsetLimit)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_boolean_labels_error() {
        let args = Args::parse(base_args("explore")).unwrap();
        let mut out = String::new();
        let bad = "grp,y,yhat\na,maybe,1\n";
        assert!(matches!(
            run_with_content(&args, bad, &mut out),
            Err(CliError::Input(_))
        ));
    }
}
