//! Artifact-backed subcommands: `probe`, `index` and `analyze`.
//!
//! `index` runs the expensive part once — encode the dataset, mine the
//! frequent lattice — and persists both as checksummed artifacts.
//! `analyze --artifact` then re-analyzes any number of times by
//! streaming recount ([`divexplorer::DivExplorer::from_artifact`]),
//! never re-mining. `probe` validates an artifact's envelope and prints
//! its header without decoding the sections.
//!
//! Nothing here panics on untrusted bytes, and corruption degrades by
//! provenance (DESIGN.md §6h): a tampered, truncated or version-skewed
//! **lattice** artifact is quarantined (`*.quarantine`) and rebuilt by
//! re-mining the dataset artifact — `analyze` still succeeds, with a
//! warning. A poisoned **dataset** artifact fails closed with a typed
//! [`CliError::Input`] (exit code 3): there is nothing on disk to
//! rebuild it from.

use std::fmt::Write as _;
use std::path::Path;

use datasets::artifact::{self, ArenaKey};
use datasets::artifact_io::DiskIo;
use divexplorer::DivergenceReport;

use crate::{explorer_from_args, prepare, render_explore, Args, CliError, IndexFormat, RunStatus};

/// Shard count for `index --format dxs` when `--shards` is not given:
/// enough windows that a later out-of-core recount holds a fraction of
/// the rows resident, without fragmenting small datasets.
const DEFAULT_INDEX_SHARDS: usize = 8;

/// The engine name recorded in artifact keys: `--shards` forces the
/// sharded two-pass engine regardless of `--engine`.
pub(crate) fn engine_label(args: &Args) -> String {
    if args.shards.is_some() {
        "sharded".to_string()
    } else {
        args.engine.to_string()
    }
}

fn input_err(context: &dyn std::fmt::Display, e: &dyn std::fmt::Display) -> CliError {
    CliError::Input(format!("{context}: {e}"))
}

/// `probe`: validates the envelope (magic, version, checksum, section
/// table) and prints the header.
pub fn run_probe(args: &Args, out: &mut String) -> Result<(), CliError> {
    let path = Path::new(&args.artifact);
    let info = artifact::probe(path).map_err(|e| input_err(&path.display(), &e))?;
    let _ = writeln!(out, "artifact: {}", path.display());
    let _ = writeln!(out, "  kind:     {}", info.kind_name());
    let _ = writeln!(out, "  version:  {}", info.version);
    let _ = writeln!(out, "  hash:     {:016x}", info.hash);
    let _ = writeln!(out, "  bytes:    {}", info.bytes);
    let _ = writeln!(out, "  sections: {}", info.sections);
    Ok(())
}

/// `index`: encodes the CSV into a dataset artifact and mines + persists
/// its frequent lattice under the registry key. Refuses to persist a
/// budget-truncated lattice — a partial candidate set would silently
/// poison every later recount.
pub fn run_index(args: &Args, content: &str, out: &mut String) -> Result<(), CliError> {
    let prepared = prepare(content, args)?;
    let dir = Path::new(&args.artifact);
    std::fs::create_dir_all(dir).map_err(|e| input_err(&dir.display(), &e))?;

    let report = explorer_from_args(args)
        .explore(&prepared.data, &prepared.v, &prepared.u, &args.metrics)
        .map_err(|e| CliError::Input(e.to_string()))?;
    if let Some(reason) = report.completeness().truncation_reason() {
        return Err(CliError::Truncated(reason));
    }

    let dataset_path = dir.join(artifact::dataset_file_name(&args.name));
    let hash = artifact::save_dataset(&dataset_path, &prepared.data, &prepared.v, &prepared.u)
        .map_err(|e| input_err(&dataset_path.display(), &e))?;

    let shards_line = if args.format == IndexFormat::Dxs {
        let n_shards = args.shards.unwrap_or(DEFAULT_INDEX_SHARDS);
        let shards_path = dir.join(artifact::shards_file_name(&args.name));
        let shards_hash = artifact::save_shards(&shards_path, &prepared.data, n_shards)
            .map_err(|e| input_err(&shards_path.display(), &e))?;
        Some(format!(
            "shards: {n_shards} windows, hash {shards_hash:016x} -> {}",
            shards_path.display()
        ))
    } else {
        None
    };

    let candidates = candidates_of(&report);
    let key = ArenaKey {
        dataset_hash: hash,
        min_support_count: report.min_support_count(),
        max_len: None,
        engine: engine_label(args),
        n_rows: prepared.data.n_rows() as u64,
    };
    let arena_path = dir.join(artifact::arena_file_name(&key));
    artifact::save_arena(&arena_path, &key, &candidates)
        .map_err(|e| input_err(&arena_path.display(), &e))?;

    let _ = writeln!(
        out,
        "dataset '{}': {} rows, hash {hash:016x} -> {}",
        args.name,
        prepared.data.n_rows(),
        dataset_path.display()
    );
    if let Some(line) = shards_line {
        let _ = writeln!(out, "{line}");
    }
    let _ = writeln!(
        out,
        "lattice: {} patterns at support >= {} ({} rows) -> {}",
        candidates.len(),
        args.support,
        key.min_support_count,
        arena_path.display()
    );
    Ok(())
}

/// Extracts the candidate lattice (items + supports, unit payload) from
/// a report and normalizes it to canonical order so the artifact bytes
/// do not depend on the mining engine's emission order.
pub(crate) fn candidates_of(report: &DivergenceReport) -> fpm::ItemsetArena<()> {
    let mut candidates = fpm::ItemsetArena::with_capacity(report.len(), 0);
    for idx in 0..report.len() {
        candidates.push(report.items(idx), report.support(idx), ());
    }
    candidates.sort_canonical();
    candidates
}

/// `analyze --artifact`: loads the dataset and lattice artifacts and
/// recounts — the warm path. No mining phase runs on healthy artifacts;
/// a poisoned lattice artifact is quarantined and rebuilt (one re-mine,
/// a warning, exit 0). A *missing* lattice artifact stays a typed error
/// with a re-index hint: a registry-key miss is a parameter mismatch,
/// not corruption, and silently mining at the wrong key would mask it.
pub fn run_analyze(args: &Args, out: &mut String) -> Result<RunStatus, CliError> {
    let dir = Path::new(&args.artifact);
    let dataset_path = dir.join(artifact::dataset_file_name(&args.name));
    let ds = artifact::load_dataset(&dataset_path)
        .map_err(|e| input_err(&dataset_path.display(), &e))?;

    let n = ds.data.n_rows();
    let params = fpm::MiningParams::with_min_support_fraction(args.support, n);
    let key = ArenaKey {
        dataset_hash: ds.hash,
        min_support_count: params.min_support_count,
        max_len: None,
        engine: engine_label(args),
        n_rows: n as u64,
    };
    let arena_path = dir.join(artifact::arena_file_name(&key));
    if !arena_path.exists() {
        return Err(CliError::Input(format!(
            "{}: artifact not found (index this dataset first with \
             `divexplorer index` using the same --support and --engine)",
            arena_path.display()
        )));
    }
    let candidates = match artifact::load_arena(&arena_path) {
        Ok((loaded_key, candidates)) if loaded_key == key => candidates,
        Ok(_) => rebuild_arena(
            args,
            &ds,
            &key,
            &arena_path,
            "artifact key does not match its file name",
            out,
        )?,
        Err(e) => rebuild_arena(args, &ds, &key, &arena_path, &e.to_string(), out)?,
    };

    let report = explorer_from_args(args)
        .from_artifact(&ds.data, &candidates, &ds.v, &ds.u, &args.metrics)
        .map_err(|e| CliError::Input(e.to_string()))?;
    render_explore(args, &report, out)
}

/// The quarantine-and-rebuild path: moves the poisoned lattice artifact
/// aside, re-mines it from the (checksum-verified) dataset artifact and
/// re-persists the registry slot. A failing re-persist degrades to a
/// warning — the recount proceeds from memory either way.
fn rebuild_arena(
    args: &Args,
    ds: &artifact::DatasetArtifact,
    key: &ArenaKey,
    arena_path: &Path,
    why: &str,
    out: &mut String,
) -> Result<fpm::ItemsetArena<()>, CliError> {
    match artifact::quarantine(&DiskIo, arena_path) {
        Ok(dest) => {
            let _ = writeln!(
                out,
                "warning: {}: {why}; quarantined to {} and re-mining",
                arena_path.display(),
                dest.display()
            );
        }
        Err(e) => {
            let _ = writeln!(
                out,
                "warning: {}: {why}; quarantine rename failed ({e}); re-mining anyway",
                arena_path.display()
            );
        }
    }
    let report = explorer_from_args(args)
        .explore(&ds.data, &ds.v, &ds.u, &args.metrics)
        .map_err(|e| CliError::Input(e.to_string()))?;
    if let Some(reason) = report.completeness().truncation_reason() {
        // Same contract as `index`: never persist (or recount against)
        // a partial candidate set.
        return Err(CliError::Truncated(reason));
    }
    let candidates = candidates_of(&report);
    if let Err(e) = artifact::save_arena(arena_path, key, &candidates) {
        let _ = writeln!(
            out,
            "warning: {}: rebuilt lattice could not be re-persisted ({e})",
            arena_path.display()
        );
    }
    Ok(candidates)
}
