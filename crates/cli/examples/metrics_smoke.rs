//! CI smoke check for the live metrics plane: drives a real serve
//! session in-process, scrapes `{"op":"metrics"}`, and validates the
//! exposition with the in-repo Prometheus parser
//! ([`obs::export::validate_prometheus`]) — so a malformed rendering
//! can never reach an actual scraper unnoticed. Also cross-checks the
//! `stats` and `metrics` views against each other: both are derived
//! from the one live registry and must agree exactly.
//!
//! Run with `cargo run -p cli --example metrics_smoke`; exits nonzero
//! (panics) on any violation.

use cli::serve::serve_loop;
use cli::Args;
use serde_json::Value;

const CSV: &str = "\
grp,other,y,yhat
a,x,0,1
a,y,0,1
a,x,0,1
a,y,0,0
b,x,0,0
b,y,0,0
b,x,0,0
b,y,0,1
";

fn main() {
    let dir = std::env::temp_dir().join(format!("metrics-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let csv_path = dir.join("toy.csv");
    std::fs::write(&csv_path, CSV).expect("fixture csv");

    let args = Args::parse(vec!["serve".to_string()]).expect("serve args");
    let requests = [
        format!(
            r#"{{"op":"register","name":"toy","path":"{}","label":"y","pred":"yhat"}}"#,
            csv_path.display()
        ),
        r#"{"op":"mine","name":"toy","support":0.25}"#.to_string(),
        r#"{"op":"query","name":"toy","support":0.25,"top":3}"#.to_string(),
        r#"{"op":"stats"}"#.to_string(),
        r#"{"op":"metrics"}"#.to_string(),
        r#"{"op":"metrics","format":"json"}"#.to_string(),
        r#"{"op":"trace"}"#.to_string(),
        r#"{"op":"shutdown"}"#.to_string(),
    ];
    let input = requests.join("\n");
    let mut out = Vec::new();
    serve_loop(&args, input.as_bytes(), &mut out).expect("serve loop");
    let _ = std::fs::remove_dir_all(&dir);

    let responses: Vec<Value> = String::from_utf8(out)
        .expect("utf-8 responses")
        .lines()
        .map(|line| serde_json::from_str(line).expect("response json"))
        .collect();
    assert_eq!(responses.len(), requests.len(), "one response per request");
    for (i, r) in responses.iter().enumerate() {
        assert_eq!(r["ok"].as_bool(), Some(true), "request {i} failed: {r:?}");
    }
    let (stats, prom, json, trace) = (&responses[3], &responses[4], &responses[5], &responses[6]);

    // The exposition itself must survive the in-repo Prometheus parser.
    let body = prom["body"].as_str().expect("metrics body");
    obs::export::validate_prometheus(body).expect("valid Prometheus exposition");

    // Request latency quantiles are exported per op, for ops that ran.
    for op in ["register", "mine", "query", "stats"] {
        for q in ["p50", "p95", "p99"] {
            let gauge = format!("divex_request_duration_us_{q}{{op=\"{op}\"}}");
            assert!(body.contains(&gauge), "missing {gauge} in:\n{body}");
        }
    }
    assert!(
        body.contains("divex_request_duration_us_bucket"),
        "latency histogram missing"
    );

    // stats, metrics (prometheus) and metrics (json) all derive from
    // the one live registry: the scrape precedes them in arrival order,
    // so counts line up exactly (stats was request 4, metrics 5 and 6).
    let stats_requests = stats["requests"].as_u64().expect("stats.requests");
    assert_eq!(stats_requests, 4, "stats sees itself and its precursors");
    assert!(
        body.contains("divex_serve_requests_total 5"),
        "prometheus scrape must count its own request: {body}"
    );
    let json_requests = json["counters"]["serve.requests"]
        .as_u64()
        .expect("json counters");
    assert_eq!(json_requests, 6, "json scrape counts itself too");
    assert_eq!(json["counters"]["serve.failures"].as_u64(), None);
    assert!(json["latencies"]["mine"]["p99_le_us"].as_u64().is_some());

    // The flight recorder retained every request so far, whole — the
    // six completed ones plus the trace request itself, still in flight
    // while it renders the ring.
    assert_eq!(trace["retained"].as_u64(), Some(7));
    let ndjson = trace["body"].as_str().expect("trace body");
    assert!(ndjson.contains("\"ev\":\"request_start\""));
    assert!(ndjson.contains("\"op\":\"mine\""));
    assert!(ndjson.contains("\"span\":\"serve.request\""));

    println!("metrics_smoke: exposition valid, views consistent, traces whole");
}
