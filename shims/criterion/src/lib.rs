//! Offline drop-in replacement for the subset of `criterion` this
//! workspace uses: `criterion_group!`/`criterion_main!`, benchmark
//! groups with `sample_size`/`warm_up_time`/`measurement_time`,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, and
//! `Bencher::iter`.
//!
//! Semantics: each benchmark runs a short warm-up, then `sample_size`
//! timed samples, and prints mean/min/max wall-clock per iteration.
//! When invoked by `cargo test` (a `--test` argument, as cargo passes
//! to `harness = false` bench targets), every benchmark body runs
//! exactly once as a smoke test so the tier-1 suite stays fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// True when cargo is running this bench binary in test mode.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Substring filter passed on the command line (`cargo bench -- foo`).
fn cli_filter() -> Option<String> {
    std::env::args().skip(1).find(|a| !a.starts_with('-'))
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything acceptable as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

pub struct Bencher {
    /// Mean/min/max nanoseconds per iteration, filled by `iter`.
    stats: Option<(f64, f64, f64)>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    smoke_only: bool,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.smoke_only {
            black_box(routine());
            self.stats = Some((0.0, 0.0, 0.0));
            return;
        }

        // Warm-up: estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Choose iterations per sample so all samples fit the
        // measurement window.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() / iters as f64 * 1e9);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        self.stats = Some((mean, min, max));
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(
    full_name: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    f: impl FnOnce(&mut Bencher),
) {
    if let Some(filter) = cli_filter() {
        if !full_name.contains(&filter) {
            return;
        }
    }
    let smoke = test_mode();
    let mut bencher = Bencher {
        stats: None,
        sample_size,
        warm_up_time,
        measurement_time,
        smoke_only: smoke,
    };
    f(&mut bencher);
    match bencher.stats {
        Some(_) if smoke => println!("{full_name}: ok (smoke)"),
        Some((mean, min, max)) => println!(
            "{full_name:<50} time: [{} {} {}]",
            format_ns(min),
            format_ns(mean),
            format_ns(max)
        ),
        None => println!("{full_name}: no measurement (iter was not called)"),
    }
}

pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (sample_size, warm_up_time, measurement_time) =
            (self.sample_size, self.warm_up_time, self.measurement_time);
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
            warm_up_time,
            measurement_time,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &id.into_id(),
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            |b| f(b),
        );
        self
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(
            &full,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            |b| f(b),
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(
            &full,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
