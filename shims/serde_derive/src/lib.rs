//! Derive macros for the offline `serde` shim.
//!
//! Supports exactly the shapes this workspace derives: non-generic
//! structs with named fields, and enums whose variants are all unit
//! variants. Parsing walks the raw `TokenStream` (no `syn`/`quote`,
//! which are unavailable offline); codegen goes through string
//! formatting + `.parse()`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Enum with unit variants only.
    Enum { name: String, variants: Vec<String> },
}

/// Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_meta(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // attribute: `#` followed by a bracket group
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_meta(&tokens, 0);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found {other}"),
    };
    i += 1;
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            panic!("serde shim derive: only non-generic brace-bodied types are supported ({name})")
        }
    };
    let body: Vec<TokenTree> = body.into_iter().collect();

    match kind.as_str() {
        "struct" => Shape::Struct {
            name,
            fields: parse_named_fields(&body),
        },
        "enum" => Shape::Enum {
            name,
            variants: parse_unit_variants(&body),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

fn parse_named_fields(body: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_meta(body, i);
        if i >= body.len() {
            break;
        }
        let field = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected field name, found {other}"),
        };
        fields.push(field);
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!("serde shim derive: only named fields are supported"),
        }
        // Skip the type: scan to the next top-level comma, tracking
        // angle-bracket depth so `Vec<Option<f64>>`-style types (or a
        // future `HashMap<K, V>`) don't split on inner commas.
        let mut depth = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_unit_variants(body: &[TokenTree]) -> Vec<String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_meta(body, i);
        if i >= body.len() {
            break;
        }
        let variant = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, found {other}"),
        };
        i += 1;
        match body.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(other) => panic!(
                "serde shim derive: only unit enum variants are supported, found {other} after {variant}"
            ),
        }
        variants.push(variant);
    }
    variants
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::String(::std::string::String::from(\"{v}\")),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde shim derive: generated code must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.get_field(\"{f}\"))\
                             .map_err(|e| ::serde::Error::msg(\
                                 ::std::format!(\"{name}.{f}: {{e}}\")))?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {entries} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v.as_str() {{\n\
                             ::std::option::Option::Some(s) => match s {{\n\
                                 {arms}\n\
                                 other => ::std::result::Result::Err(::serde::Error::msg(\
                                     ::std::format!(\"unknown {name} variant {{other:?}}\"))),\n\
                             }},\n\
                             ::std::option::Option::None => ::std::result::Result::Err(\
                                 ::serde::Error::msg(\"expected string for enum {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde shim derive: generated code must parse")
}
