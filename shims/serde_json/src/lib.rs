//! Offline drop-in replacement for `serde_json`, backed by the `serde`
//! shim's [`Value`] tree: `to_string`, `to_string_pretty`, `from_str`,
//! and a `Value` type with indexing/accessors for tests.

pub use serde::Value;

use serde::{Deserialize, Serialize};

pub type Error = serde::Error;
pub type Result<T> = std::result::Result<T, Error>;

pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value)
}

pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------
// Writer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid utf8 in number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::msg(format!("invalid number {text:?}")))
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error::msg(format!("invalid escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 character verbatim.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid utf8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected , or ] in array, found {other:?}"
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected , or }} in object, found {other:?}"
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let value = Value::Object(vec![
            ("name".to_string(), Value::String("a \"b\"\n".to_string())),
            (
                "xs".to_string(),
                Value::Array(vec![Value::Number(1.0), Value::Null, Value::Bool(true)]),
            ),
            ("pi".to_string(), Value::Number(3.25)),
        ]);
        for text in [
            to_string(&value).unwrap(),
            to_string_pretty(&value).unwrap(),
        ] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, value);
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(to_string(&vec![3u64]).unwrap(), "[\n3\n]".replace('\n', ""));
    }

    #[test]
    fn index_and_accessors() {
        let v: Value = from_str(r#"{"metrics":["FPR","FNR"],"n":4}"#).unwrap();
        assert_eq!(v["metrics"][0], "FPR");
        assert_eq!(v["metrics"].as_array().unwrap().len(), 2);
        assert_eq!(v["n"].as_u64(), Some(4));
        assert!(v["missing"].is_null());
    }
}
