//! Offline drop-in replacement for `serde` with `derive`.
//!
//! Instead of the visitor-based Serializer/Deserializer machinery, this
//! shim routes everything through an owned JSON-like [`Value`] tree:
//! `Serialize` renders a value into a [`Value`], `Deserialize` rebuilds
//! one from it. The `serde_json` shim then formats/parses that tree.
//! The derive macros (re-exported from `serde_derive`) cover plain
//! structs with named fields and unit-variant enums — exactly the
//! shapes this workspace derives.

pub use serde_derive::{Deserialize, Serialize};

/// Deserialization error: a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

/// Owned JSON-like value tree. Object fields keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Field lookup on objects; `Null` when missing or not an object.
    pub fn get_field(&self, name: &str) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get_field(key)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) if n.fract() == 0.0 => Ok(*n as $t),
                    other => Err(Error::msg(format!(
                        "expected integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}
serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Number(*self)
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(*n),
            // Non-finite floats serialize as null (like serde_json's
            // lossy modes); round-trip them as NaN.
            Value::Null => Ok(f64::NAN),
            other => Err(Error::msg(format!("expected number, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|n| n as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::msg(format!("expected bool, found {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::msg(format!("expected string, found {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg(format!("expected array, found {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
