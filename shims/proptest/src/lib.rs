//! Offline drop-in replacement for the subset of `proptest` this
//! workspace uses: `Strategy` with `prop_map`/`prop_flat_map`, range
//! and tuple strategies, `any`, `collection::vec`, `option::of`,
//! `Just`, the `proptest!` test macro with `#![proptest_config(...)]`,
//! and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream: no shrinking (a failing case reports the
//! generated input via the assertion message instead of a minimized
//! one), and the value stream is a deterministic function of the test
//! name, so runs are exactly reproducible.

pub mod test_runner {
    /// Per-test configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Failure raised by `prop_assert!`-style macros.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic generator (xoshiro256++ seeded from the test name).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            let mut state = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                state ^= b as u64;
                state = state.wrapping_mul(0x1000_0000_01b3);
            }
            let sm = |st: &mut u64| {
                *st = st.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = *st;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [
                    sm(&mut state),
                    sm(&mut state),
                    sm(&mut state),
                    sm(&mut state),
                ],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values. Unlike upstream there is no value tree /
    /// shrinking: `sample` draws a value directly.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical `any::<T>()` strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, spanning several magnitudes.
            rng.unit_f64() * 2e6 - 1e6
        }
    }

    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Any<T> {
        pub const fn new() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// `any::<T>()` — canonical strategy for `T`.
pub fn any<T: arbitrary::Arbitrary>() -> arbitrary::Any<T> {
    arbitrary::Any::new()
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for [`vec`]: a fixed size or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for `Vec`s whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` about a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace alias matching upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::strategy;
    }
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies. No shrinking: the first failing case panics with the
/// case number; re-runs are deterministic per test name.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            config = (<$crate::test_runner::Config as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let strat = ( $( $strat, )+ );
                for case in 0..config.cases {
                    let values = $crate::strategy::Strategy::sample(&strat, &mut rng);
                    let ( $( $pat, )+ ) = values;
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        ::std::panic!("proptest case {} of {} failed: {}", case + 1, config.cases, e);
                    }
                }
            }
        )*
    };
}

/// Assert inside a `proptest!` body; failure aborts only this case
/// with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), lhs, rhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *lhs == *rhs,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)+), lhs, rhs
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            lhs
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(x in 3u32..9, xs in crate::collection::vec(0u32..5, 1..7)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(!xs.is_empty() && xs.len() < 7);
            prop_assert!(xs.iter().all(|&v| v < 5));
        }

        #[test]
        fn flat_map_threads_lengths(
            (n, v) in (1usize..5).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(any::<bool>(), n))
            })
        ) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn option_of_produces_both((o, _pad) in (crate::option::of(1usize..4), 0u8..1)) {
            if let Some(v) = o {
                prop_assert!((1..4).contains(&v));
            }
            // Early return is supported inside bodies.
            return Ok(());
        }
    }
}
