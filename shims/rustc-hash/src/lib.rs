//! Offline drop-in replacement for the `rustc-hash` crate.
//!
//! Implements the same multiply-rotate Fx hash used by rustc. Only the
//! surface this workspace consumes is provided: [`FxHasher`], the
//! [`FxHashMap`]/[`FxHashSet`] aliases, and [`FxBuildHasher`].

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<Vec<u32>, u64> = FxHashMap::default();
        m.insert(vec![1, 2, 3], 7);
        assert_eq!(m.get(&vec![1, 2, 3]), Some(&7));
        assert_eq!(m.get(&vec![1, 2]), None);
    }
}
