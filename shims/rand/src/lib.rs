//! Offline drop-in replacement for the subset of `rand` 0.8 this
//! workspace uses: `StdRng::seed_from_u64`, `Rng::{gen, gen_range,
//! gen_bool}` and `seq::SliceRandom::{shuffle, choose}`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fully
//! deterministic per seed, which is all the test-suite and synthetic
//! dataset generators require. The exact value stream differs from
//! upstream `rand`, but no test in this repo asserts on upstream's
//! stream.

pub mod rngs {
    pub use crate::StdRng;
}

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(mut state: u64) -> Self {
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types producible by `Rng::gen()`.
pub trait SampleStandard {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types usable with `Rng::gen_range(lo..hi)`.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u64) - (lo as u64);
                // Lemire multiply-shift: uniform enough for test workloads.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + v as $t
            }
        }
    )*};
}
uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let u = f32::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

pub trait Rng: RngCore {
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use crate::{RngCore, SampleUniform};

    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_range(rng, 0, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_range(rng, 0, self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u16..9);
            assert!((3..9).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
