//! Integration tests for the paper's formal claims, exercised on generated
//! data rather than hand-built fixtures.

use datasets::{compas, DatasetId};
use divexplorer::{
    global_div, item::for_each_subset, pruning::prune_redundant, shapley::item_contributions,
    DivExplorer, Metric, SortBy,
};

/// Property 3.1: refining a discretization never hides divergence — for the
/// coarse item `#prior>3`, at least one of its refined bins has divergence
/// of equal or greater absolute value.
#[test]
fn property_3_1_refinement_never_hides_divergence() {
    let raw = compas::generate(3000, 1);
    let coarse = raw.discretize_with_priors(false);
    let fine = raw.discretize_with_priors(true);

    let report_c = DivExplorer::new(0.01)
        .explore(&coarse, &raw.v, &raw.u, &[Metric::FalsePositiveRate])
        .unwrap();
    let report_f = DivExplorer::new(0.01)
        .explore(&fine, &raw.v, &raw.u, &[Metric::FalsePositiveRate])
        .unwrap();

    // For EVERY coarse prior item, check the property against its refined
    // partition ({0}->{0}, {[1,3]}->{1,2,3}, {>3}->{[4,7],>7}).
    let partitions: [(&str, &[&str]); 3] = [
        ("0", &["0"]),
        ("[1,3]", &["1", "2", "3"]),
        (">3", &["[4,7]", ">7"]),
    ];
    for (coarse_val, fine_vals) in partitions {
        let coarse_item = coarse.schema().item_by_name("#prior", coarse_val).unwrap();
        let Some(idx) = report_c.find(&[coarse_item]) else {
            continue;
        };
        let coarse_delta = report_c.divergence(idx, 0);
        if coarse_delta.is_nan() {
            continue;
        }
        let max_fine = fine_vals
            .iter()
            .filter_map(|val| {
                let item = fine.schema().item_by_name("#prior", val)?;
                let idx = report_f.find(&[item])?;
                let d = report_f.divergence(idx, 0);
                (!d.is_nan()).then_some(d.abs())
            })
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max_fine >= coarse_delta.abs() - 1e-9,
            "#prior={coarse_val}: coarse |Δ|={:.4} but best refinement {:.4}",
            coarse_delta.abs(),
            max_fine
        );
    }
}

/// Theorem 5.1 (soundness and completeness) against brute-force enumeration
/// on a generated COMPAS sample.
#[test]
fn theorem_5_1_soundness_and_completeness() {
    let d = compas::generate(400, 2).into_dataset();
    let s = 0.1;
    let report = DivExplorer::new(s)
        .explore(&d.data, &d.v, &d.u, &[Metric::ErrorRate])
        .unwrap();

    // Brute force: enumerate all well-formed itemsets over the schema.
    let schema = d.data.schema();
    let all_items: Vec<u32> = (0..schema.n_items()).collect();
    let mut n_checked = 0usize;
    for_each_subset(&all_items, |subset| {
        if subset.is_empty() || subset.len() > 3 {
            return; // cap the brute-force length for test speed
        }
        if schema.itemset_attributes(subset).len() != subset.len() {
            return; // ill-formed: repeated attribute
        }
        n_checked += 1;
        let support = d.data.support_set(subset).len();
        let frequent = support as f64 / d.data.n_rows() as f64 >= s;
        match report.find(subset) {
            Some(idx) => {
                assert!(frequent, "sound: reported itemset must be frequent");
                assert_eq!(report.support(idx), support as u64, "exact support");
            }
            None => assert!(!frequent, "complete: frequent itemset missing"),
        }
    });
    assert!(n_checked > 500, "brute force actually ran ({n_checked})");
}

/// Shapley efficiency (Σ item contributions = Δ) on every frequent pattern
/// of a real exploration.
#[test]
fn shapley_efficiency_on_generated_data() {
    let d = compas::generate(1500, 3).into_dataset();
    let report = DivExplorer::new(0.05)
        .explore(&d.data, &d.v, &d.u, &[Metric::FalseNegativeRate])
        .unwrap();
    let mut checked = 0;
    for idx in 0..report.len() {
        let delta = report.divergence(idx, 0);
        if delta.is_nan() {
            continue;
        }
        if let Ok(contributions) = item_contributions(&report, report.items(idx), 0) {
            let total: f64 = contributions.iter().map(|(_, c)| c).sum();
            assert!(
                (total - delta).abs() < 1e-9,
                "efficiency violated on {}",
                report.display_itemset(report.items(idx))
            );
            checked += 1;
        }
    }
    assert!(checked > 50, "checked only {checked} patterns");
}

/// Divergence is not monotone (§4.2): generated data must contain a pattern
/// whose extension has strictly smaller |Δ| — i.e. corrective items exist.
#[test]
fn divergence_is_not_monotone_on_generated_data() {
    let d = compas::generate(2000, 4).into_dataset();
    let report = DivExplorer::new(0.05)
        .explore(&d.data, &d.v, &d.u, &[Metric::FalsePositiveRate])
        .unwrap();
    let corrective = divexplorer::corrective::corrective_items(&report, 0);
    assert!(
        !corrective.is_empty(),
        "COMPAS-like data must exhibit corrective items"
    );
    // And spot-check the definition on the top one.
    let top = &corrective[0];
    assert!(top.delta_extended.abs() < top.delta_base.abs());
}

/// Theorem 4.2's phenomenon end-to-end: on the artificial dataset, items of
/// a, b, c have near-zero individual divergence but dominant global
/// divergence.
#[test]
fn global_divergence_separates_joint_causes() {
    let d = DatasetId::Artificial.generate_sized(20_000, 5);
    let report = DivExplorer::new(0.01)
        .explore(&d.data, &d.v, &d.u, &[Metric::FalsePositiveRate])
        .unwrap();
    let globals = global_div::global_item_divergence(&report, 0);
    let schema = report.schema();
    let is_abc = |item: u32| {
        let name = schema.display_item(item);
        name.starts_with("a=") || name.starts_with("b=") || name.starts_with("c=")
    };
    let abc_min = globals
        .iter()
        .filter(|&&(i, _)| is_abc(i))
        .map(|&(_, g)| g)
        .fold(f64::INFINITY, f64::min);
    let rest_max = globals
        .iter()
        .filter(|&&(i, _)| !is_abc(i))
        .map(|&(_, g)| g.abs())
        .fold(0.0, f64::max);
    assert!(
        abc_min > rest_max,
        "every a/b/c item ({abc_min:.5}) should outrank every other item ({rest_max:.5})"
    );
}

/// Pruning + ranking interplay: the ε-pruned top pattern must be a compact
/// core whose every item matters.
#[test]
fn pruning_yields_minimal_cores() {
    let d = compas::generate(2000, 6).into_dataset();
    let report = DivExplorer::new(0.05)
        .explore(&d.data, &d.v, &d.u, &[Metric::FalsePositiveRate])
        .unwrap();
    let eps = 0.03;
    let retained = prune_redundant(&report, 0, eps);
    assert!(!retained.is_empty());
    assert!(retained.len() < report.len());
    for &idx in retained.iter().take(20) {
        let items = report.items(idx);
        let delta = report.divergence(idx, 0);
        for &alpha in items {
            let base = divexplorer::item::without(items, alpha);
            let base_delta = report.divergence_of(&base, 0).unwrap();
            assert!((delta - base_delta).abs() > eps);
        }
    }
    let _ = report.ranked(0, SortBy::Divergence);
}
