//! Integration tests for the telemetry layer: the NDJSON trace produced
//! by a real exploration must be schema-valid, timestamp-monotone and
//! span-balanced, and the aggregated counters must agree with the
//! exploration's own result — including under budget truncation, across
//! miners and thread counts.

use divexplorer::{DivExplorer, Metric};
use fpm::{Algorithm, Budget, Completeness};
use std::sync::{Mutex, OnceLock};

/// [`obs`] installs a process-global recorder, so every test that
/// installs one must hold this lock for its whole install/uninstall
/// window (tests in one binary run on parallel threads).
fn obs_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn compas() -> datasets::GeneratedDataset {
    datasets::compas::generate(2000, 42).into_dataset()
}

#[test]
fn trace_is_valid_ndjson_monotone_and_span_balanced() {
    let _guard = obs_lock().lock().unwrap();
    let path = std::env::temp_dir().join(format!("telemetry-trace-{}.ndjson", std::process::id()));

    let file = std::fs::File::create(&path).unwrap();
    obs::install(std::sync::Arc::new(obs::NdjsonRecorder::new(
        std::io::BufWriter::new(file),
    )));
    let d = compas();
    let report = DivExplorer::new(0.05)
        .explore(&d.data, &d.v, &d.u, &[Metric::FalsePositiveRate])
        .expect("explore");
    obs::uninstall(); // flushes the BufWriter through the recorder

    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert!(!text.is_empty(), "an instrumented run must emit events");

    let mut last_ts = 0u64;
    let mut open: std::collections::HashMap<(String, u64), u64> = std::collections::HashMap::new();
    let mut seen_events: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut seen_names: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut emitted_total = 0u64;
    for line in text.lines() {
        let v: serde_json::Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("every line must be valid JSON, got {e}: {line}"));
        let ev = v["ev"].as_str().expect("ev field").to_string();
        assert!(
            ["span_enter", "span_exit", "counter", "histogram"].contains(&ev.as_str()),
            "unknown event kind {ev}"
        );
        let ts = v["ts_us"].as_u64().expect("ts_us field");
        assert!(ts >= last_ts, "ts_us must be non-decreasing in file order");
        last_ts = ts;
        let name = v["name"].as_str().expect("name field").to_string();
        match ev.as_str() {
            "span_enter" => {
                *open
                    .entry((name.clone(), v["id"].as_u64().unwrap()))
                    .or_insert(0) += 1;
            }
            "span_exit" => {
                let key = (name.clone(), v["id"].as_u64().unwrap());
                let n = open.get_mut(&key).expect("exit without matching enter");
                *n -= 1;
                if *n == 0 {
                    open.remove(&key);
                }
            }
            "counter" if name == "fpm.itemsets_emitted" => {
                emitted_total += v["delta"].as_u64().unwrap();
            }
            _ => {}
        }
        seen_events.insert(ev);
        seen_names.insert(name);
    }
    assert!(open.is_empty(), "unbalanced spans: {open:?}");
    for ev in ["span_enter", "span_exit", "counter", "histogram"] {
        assert!(seen_events.contains(ev), "missing event kind {ev}");
    }
    // Every exploration stage and the miner's own span must appear.
    for name in [
        "explore.tally",
        "explore.encode",
        "explore.mine",
        "fpm.mine.fp-growth",
        "fpm.fpgrowth.tree_build",
        "fpm.itemsets_emitted",
        "fpm.itemset_support",
        "fpm.arena_bytes",
    ] {
        assert!(
            seen_names.contains(name),
            "missing {name}; got {seen_names:?}"
        );
    }
    assert_eq!(emitted_total, report.len() as u64);
}

#[test]
fn every_miner_emits_its_phase_span_and_matching_counters() {
    let _guard = obs_lock().lock().unwrap();
    let d = compas();
    for algo in [
        Algorithm::Apriori,
        Algorithm::FpGrowth,
        Algorithm::Eclat,
        Algorithm::EclatBitset,
        Algorithm::Dense,
        Algorithm::Naive,
    ] {
        let recorder = std::sync::Arc::new(obs::StatsRecorder::new());
        obs::install(recorder.clone());
        let report = DivExplorer::new(0.05)
            .with_algorithm(algo)
            .explore(&d.data, &d.v, &d.u, &[Metric::FalsePositiveRate])
            .expect("explore");
        obs::uninstall();

        let snap = recorder.snapshot();
        let span = snap
            .span(algo.span_name())
            .unwrap_or_else(|| panic!("{algo:?} must record {}", algo.span_name()));
        assert_eq!(span.count, 1, "{algo:?}");
        assert_eq!(
            snap.counter("fpm.itemsets_emitted"),
            report.len() as u64,
            "{algo:?}: stream counter must match the report"
        );
        let hist = snap
            .histogram("fpm.itemset_support")
            .unwrap_or_else(|| panic!("{algo:?} must publish the support histogram"));
        assert_eq!(hist.count(), report.len() as u64, "{algo:?}");
    }
}

/// A request scope must attribute the whole exploration — including
/// events emitted by parallel mining workers on their own threads — to
/// the request, and close its trace even though no event ever crosses
/// the loop thread's boundary explicitly.
#[test]
fn request_context_propagates_through_parallel_mining_workers() {
    let _guard = obs_lock().lock().unwrap();
    let d = compas();
    let flight = std::sync::Arc::new(obs::FlightRecorder::new(8, 65_536));
    let stats = std::sync::Arc::new(obs::StatsRecorder::new());
    obs::install(std::sync::Arc::new(obs::Tee(vec![
        flight.clone(),
        stats.clone(),
    ])));
    {
        let _req = obs::request_scope(77, "mine");
        DivExplorer::new(0.05)
            .with_threads(4)
            .with_algorithm(Algorithm::Dense)
            .explore(&d.data, &d.v, &d.u, &[Metric::FalsePositiveRate])
            .expect("explore");
    }
    obs::uninstall();

    let trace = flight
        .trace_of(77)
        .expect("the request's trace must be retained");
    assert_eq!(trace.op, "mine");
    assert!(trace.dur_us.is_some(), "scope drop must complete the trace");
    let names: std::collections::HashSet<&str> = trace
        .events
        .iter()
        .map(|e| match e {
            obs::FlightEvent::SpanEnter { name, .. }
            | obs::FlightEvent::SpanExit { name, .. }
            | obs::FlightEvent::Counter { name, .. }
            | obs::FlightEvent::Histogram { name, .. } => *name,
        })
        .collect();
    for name in ["explore.mine", "fpm.parallel.mine", "fpm.itemsets_emitted"] {
        assert!(names.contains(name), "missing {name}; got {names:?}");
    }
    // Worker-side batched publishes carry the adopted context: the
    // per-worker stats land inside the request's event stream.
    assert!(
        names.iter().any(|n| n.starts_with("fpm.dense.")),
        "worker-emitted counters must be attributed: {names:?}"
    );
    // And the aggregate registry recorded the request's latency.
    let snap = stats.snapshot();
    let lat = snap.latency("mine").expect("per-op latency histogram");
    assert_eq!(lat.count(), 1);
}

/// Satellite regression: under every budget and thread count, the
/// `Truncated` verdict's `emitted` must equal both the patterns kept in
/// the report and the `fpm.itemsets_emitted` counter — the exit-4 path
/// reports exactly what the miner kept.
#[test]
fn truncated_verdict_agrees_with_report_and_counters() {
    let _guard = obs_lock().lock().unwrap();
    let d = compas();
    for threads in [1usize, 2] {
        let recorder = std::sync::Arc::new(obs::StatsRecorder::new());
        obs::install(recorder.clone());
        let report = DivExplorer::new(0.05)
            .with_threads(threads)
            .with_budget(Budget::unlimited().with_max_itemsets(5))
            .explore(&d.data, &d.v, &d.u, &[Metric::FalsePositiveRate])
            .expect("budget exhaustion is not an error");
        obs::uninstall();

        match *report.completeness() {
            Completeness::Truncated { emitted, .. } => {
                assert_eq!(
                    emitted,
                    report.len() as u64,
                    "threads={threads}: verdict must count what the report holds"
                );
                assert_eq!(
                    recorder.snapshot().counter("fpm.itemsets_emitted"),
                    emitted,
                    "threads={threads}: telemetry must agree with the verdict"
                );
            }
            Completeness::Complete => {
                panic!("threads={threads}: a 5-itemset cap must truncate this dataset")
            }
        }
    }
}
