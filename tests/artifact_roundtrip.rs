//! Differential property tests for the artifact layer (DESIGN.md §6g):
//! persisting a mined lattice and recounting from the decoded bytes must
//! be bit-identical to the in-memory pipeline for every engine, encoded
//! artifacts must round-trip byte-for-byte, and corrupted bytes must
//! surface typed errors — never panics, never silently wrong tallies.

use datasets::artifact::{self, ArenaKey, ArtifactError};
use divexplorer::{DatasetBuilder, DiscreteDataset, DivExplorer, DivergenceReport, Metric};
use fpm::{Algorithm, ItemsetArena};
use proptest::prelude::*;

const METRICS: [Metric; 2] = [Metric::FalsePositiveRate, Metric::ErrorRate];

/// The engine matrix from the acceptance criteria: each entry configures
/// a `DivExplorer` whose mined lattice the artifact must reproduce.
fn engines(support: f64) -> Vec<(&'static str, DivExplorer)> {
    vec![
        (
            "eclat",
            DivExplorer::new(support).with_algorithm(Algorithm::Eclat),
        ),
        (
            "dense",
            DivExplorer::new(support).with_algorithm(Algorithm::Dense),
        ),
        ("sharded-k1", DivExplorer::new(support).with_shards(1)),
        ("sharded-k7", DivExplorer::new(support).with_shards(7)),
    ]
}

/// Strategy: a random discrete dataset over 3 attributes plus random
/// ground truth and predictions (same shape as proptest_pipeline.rs).
fn random_input() -> impl Strategy<Value = (DiscreteDataset, Vec<bool>, Vec<bool>)> {
    (2u16..4, 2u16..4, 8usize..26).prop_flat_map(|(card_a, card_b, n)| {
        let col_a = proptest::collection::vec(0..card_a, n);
        let col_b = proptest::collection::vec(0..card_b, n);
        let col_c = proptest::collection::vec(0..2u16, n);
        let v = proptest::collection::vec(any::<bool>(), n);
        let u = proptest::collection::vec(any::<bool>(), n);
        (col_a, col_b, col_c, v, u).prop_map(move |(a, b, c, v, u)| {
            let labels_a: Vec<&str> = ["a0", "a1", "a2"][..card_a as usize].to_vec();
            let labels_b: Vec<&str> = ["b0", "b1", "b2"][..card_b as usize].to_vec();
            let mut builder = DatasetBuilder::new();
            builder.categorical("A", &labels_a, &a);
            builder.categorical("B", &labels_b, &b);
            builder.categorical("C", &["c0", "c1"], &c);
            (builder.build().unwrap(), v, u)
        })
    })
}

/// The canonical candidate arena an artifact persists for a report.
fn candidates_of(report: &DivergenceReport) -> ItemsetArena<()> {
    let mut arena = ItemsetArena::with_capacity(report.len(), 0);
    for idx in 0..report.len() {
        arena.push(report.items(idx), report.support(idx), ());
    }
    arena.sort_canonical();
    arena
}

fn assert_reports_bit_identical(cold: &DivergenceReport, warm: &DivergenceReport, tag: &str) {
    assert_eq!(cold.len(), warm.len(), "{tag}: pattern count");
    for idx in 0..cold.len() {
        let items = cold.items(idx);
        let widx = warm
            .find(items)
            .unwrap_or_else(|| panic!("{tag}: {items:?} missing after round-trip"));
        assert_eq!(
            cold.support(idx),
            warm.support(widx),
            "{tag}: support on {items:?}"
        );
        for m in 0..METRICS.len() {
            assert_eq!(
                cold.divergence(idx, m).to_bits(),
                warm.divergence(widx, m).to_bits(),
                "{tag}: divergence bits on {items:?} metric {m}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// save → load → recount equals the in-memory pipeline bit for bit,
    /// for every engine, and the encoded bytes themselves round-trip
    /// losslessly (decode → re-encode is the identity on bytes).
    #[test]
    fn persisted_lattices_recount_bit_identically(
        (data, v, u) in random_input(),
        support in 0.05f64..0.5,
    ) {
        let dataset_bytes = artifact::encode_dataset(&data, &v, &u);
        let ds = artifact::decode_dataset(&dataset_bytes).unwrap();
        prop_assert_eq!(&artifact::encode_dataset(&ds.data, &ds.v, &ds.u), &dataset_bytes);
        prop_assert_eq!(ds.hash, artifact::dataset_hash(&data));
        prop_assert_eq!(&ds.v, &v);
        prop_assert_eq!(&ds.u, &u);

        let mut engine_bytes: Option<Vec<u8>> = None;
        for (name, explorer) in engines(support) {
            let cold = explorer.explore(&data, &v, &u, &METRICS).unwrap();
            let candidates = candidates_of(&cold);
            let key = ArenaKey {
                dataset_hash: ds.hash,
                min_support_count: cold.min_support_count(),
                max_len: None,
                engine: "any".to_string(),
                n_rows: data.n_rows() as u64,
            };
            let bytes = artifact::encode_arena(&key, &candidates);
            let (loaded_key, loaded) = artifact::decode_arena(&bytes).unwrap();
            prop_assert_eq!(&loaded_key, &key);
            prop_assert_eq!(&artifact::encode_arena(&loaded_key, &loaded), &bytes);

            // The canonical lattice is engine-independent, so so are
            // the artifact bytes (keys held equal).
            match &engine_bytes {
                None => engine_bytes = Some(bytes),
                Some(first) => prop_assert_eq!(first, &bytes, "{} bytes diverge", name),
            }

            let warm = explorer
                .from_artifact(&ds.data, &loaded, &ds.v, &ds.u, &METRICS)
                .unwrap();
            assert_reports_bit_identical(&cold, &warm, name);
        }
    }

    /// Recounting the persisted lattice under a *different* prediction
    /// vector matches mining from scratch under that vector — the
    /// recount-not-remine invariant that makes artifacts reusable.
    #[test]
    fn recounting_under_new_predictions_matches_a_fresh_mine(
        (data, v, u) in random_input(),
        flip_mask in proptest::collection::vec(any::<bool>(), 8..26),
    ) {
        let explorer = DivExplorer::new(0.1).with_algorithm(Algorithm::Eclat);
        let cold = explorer.explore(&data, &v, &u, &METRICS).unwrap();
        let candidates = candidates_of(&cold);

        let u2: Vec<bool> = u
            .iter()
            .zip(flip_mask.iter().chain(std::iter::repeat(&false)))
            .map(|(&b, &f)| b ^ f)
            .collect();
        let warm = explorer.from_artifact(&data, &candidates, &v, &u2, &METRICS).unwrap();
        let fresh = explorer.explore(&data, &v, &u2, &METRICS).unwrap();
        assert_reports_bit_identical(&fresh, &warm, "new-u recount");
    }

    /// Any single flipped bit anywhere in an artifact is detected as a
    /// typed error — decoding never panics and never succeeds.
    #[test]
    fn any_single_bit_flip_fails_closed(
        (data, v, u) in random_input(),
        pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut bytes = artifact::encode_dataset(&data, &v, &u);
        let i = pos % bytes.len();
        bytes[i] ^= 1 << bit;
        prop_assert!(artifact::decode_dataset(&bytes).is_err());
    }

    /// Truncating an artifact at any point is detected, never a panic.
    #[test]
    fn any_truncation_fails_closed(
        (data, v, u) in random_input(),
        cut in any::<usize>(),
    ) {
        let report = DivExplorer::new(0.1).explore(&data, &v, &u, &METRICS).unwrap();
        let key = ArenaKey {
            dataset_hash: artifact::dataset_hash(&data),
            min_support_count: report.min_support_count(),
            max_len: None,
            engine: "eclat".to_string(),
            n_rows: data.n_rows() as u64,
        };
        let bytes = artifact::encode_arena(&key, &candidates_of(&report));
        let cut = cut % bytes.len();
        prop_assert!(artifact::decode_arena(&bytes[..cut]).is_err());
    }
}

/// A future format version is rejected with the typed version error even
/// when the checksum is recomputed to match — readers must not guess at
/// layouts they don't know.
#[test]
fn version_bumps_are_rejected_with_a_typed_error() {
    let mut builder = DatasetBuilder::new();
    builder.categorical("A", &["x", "y"], &[0, 1, 0, 1]);
    let data = builder.build().unwrap();
    let v = vec![true, false, true, false];
    let u = vec![true, true, false, false];
    let mut bytes = artifact::encode_dataset(&data, &v, &u);

    bytes[4..8].copy_from_slice(&(artifact::FORMAT_VERSION + 1).to_le_bytes());
    // Re-seal the trailing FNV-1a 64 checksum so only the version differs.
    let end = bytes.len() - 8;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in &bytes[..end] {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    bytes[end..].copy_from_slice(&h.to_le_bytes());

    match artifact::decode_dataset(&bytes) {
        Err(ArtifactError::UnsupportedVersion { got, want }) => {
            assert_eq!(got, artifact::FORMAT_VERSION + 1);
            assert_eq!(want, artifact::FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

/// Loading a dataset artifact as an arena (and vice versa) is a typed
/// kind error, not a misparse.
#[test]
fn kind_confusion_is_a_typed_error() {
    let mut builder = DatasetBuilder::new();
    builder.categorical("A", &["x", "y"], &[0, 1, 0, 1]);
    let data = builder.build().unwrap();
    let v = vec![true, false, true, false];
    let u = vec![false, true, true, false];
    let dataset_bytes = artifact::encode_dataset(&data, &v, &u);
    assert!(matches!(
        artifact::decode_arena(&dataset_bytes),
        Err(ArtifactError::WrongKind { .. })
    ));

    let report = DivExplorer::new(0.25)
        .explore(&data, &v, &u, &METRICS)
        .unwrap();
    let key = ArenaKey {
        dataset_hash: artifact::dataset_hash(&data),
        min_support_count: report.min_support_count(),
        max_len: None,
        engine: "eclat".to_string(),
        n_rows: 4,
    };
    let arena_bytes = artifact::encode_arena(&key, &candidates_of(&report));
    assert!(matches!(
        artifact::decode_dataset(&arena_bytes),
        Err(ArtifactError::WrongKind { .. })
    ));
}
