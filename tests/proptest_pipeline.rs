//! Property-based integration tests over random datasets and labelings:
//! the exploration must match brute force, and the analysis layers must
//! satisfy their invariants regardless of the input.

use divexplorer::{
    item::{for_each_subset, without},
    shapley::item_contributions,
    DatasetBuilder, DiscreteDataset, DivExplorer, Metric,
};
use proptest::prelude::*;

/// Strategy: a random discrete dataset over 3 attributes with 2–3 values
/// each, plus random ground truth and predictions.
fn random_input() -> impl Strategy<Value = (DiscreteDataset, Vec<bool>, Vec<bool>)> {
    (2u16..4, 2u16..4, 8usize..26).prop_flat_map(|(card_a, card_b, n)| {
        let col_a = proptest::collection::vec(0..card_a, n);
        let col_b = proptest::collection::vec(0..card_b, n);
        let col_c = proptest::collection::vec(0..2u16, n);
        let v = proptest::collection::vec(any::<bool>(), n);
        let u = proptest::collection::vec(any::<bool>(), n);
        (col_a, col_b, col_c, v, u).prop_map(move |(a, b, c, v, u)| {
            let labels_a: Vec<&str> = ["a0", "a1", "a2"][..card_a as usize].to_vec();
            let labels_b: Vec<&str> = ["b0", "b1", "b2"][..card_b as usize].to_vec();
            let mut builder = DatasetBuilder::new();
            builder.categorical("A", &labels_a, &a);
            builder.categorical("B", &labels_b, &b);
            builder.categorical("C", &["c0", "c1"], &c);
            (builder.build().unwrap(), v, u)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exploration_matches_brute_force((data, v, u) in random_input(), s in 0.05f64..0.6) {
        let report = DivExplorer::new(s)
            .explore(&data, &v, &u, &[Metric::ErrorRate])
            .unwrap();
        let schema = data.schema();
        let all_items: Vec<u32> = (0..schema.n_items()).collect();
        for_each_subset(&all_items, |subset| {
            if subset.is_empty() || schema.itemset_attributes(subset).len() != subset.len() {
                return;
            }
            let support = data.support_set(subset).len();
            let frequent = support as f64 / data.n_rows() as f64 >= s;
            assert_eq!(report.find(subset).is_some(), frequent,
                "itemset {:?} support {}", subset, support);
            if let Some(idx) = report.find(subset) {
                assert_eq!(report.support(idx), support as u64);
            }
        });
    }

    #[test]
    fn shapley_efficiency_holds_for_every_pattern((data, v, u) in random_input()) {
        let report = DivExplorer::new(0.05)
            .explore(&data, &v, &u, &[Metric::ErrorRate])
            .unwrap();
        for idx in 0..report.len() {
            let delta = report.divergence(idx, 0);
            if delta.is_nan() { continue; }
            if let Ok(contributions) = item_contributions(&report, report.items(idx), 0) {
                let total: f64 = contributions.iter().map(|(_, c)| c).sum();
                prop_assert!((total - delta).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rates_are_bounded_and_divergences_consistent((data, v, u) in random_input()) {
        let report = DivExplorer::new(0.1)
            .explore(&data, &v, &u, &[Metric::FalsePositiveRate, Metric::Accuracy])
            .unwrap();
        for idx in 0..report.len() {
            for m in 0..2 {
                let rate = report.rate(idx, m);
                if !rate.is_nan() {
                    prop_assert!((0.0..=1.0).contains(&rate));
                    let delta = report.divergence(idx, m);
                    prop_assert!((delta - (rate - report.dataset_rate(m))).abs() < 1e-12);
                }
                // t-statistics are always finite and non-negative thanks to
                // the Beta posterior.
                let t = report.t_statistic(idx, m);
                prop_assert!(t.is_finite() && t >= 0.0);
            }
        }
    }

    #[test]
    fn pruning_is_sound_and_monotone((data, v, u) in random_input()) {
        let report = DivExplorer::new(0.05)
            .explore(&data, &v, &u, &[Metric::ErrorRate])
            .unwrap();
        let mut previous = usize::MAX;
        for eps in [0.0, 0.05, 0.1, 0.3] {
            let retained = divexplorer::pruning::prune_redundant(&report, 0, eps);
            prop_assert!(retained.len() <= previous, "retention must shrink with ε");
            previous = retained.len();
            for &idx in &retained {
                let items = report.items(idx);
                let delta = report.divergence(idx, 0);
                for &alpha in items {
                    let base_delta =
                        report.divergence_of(&without(items, alpha), 0).unwrap();
                    prop_assert!((delta - base_delta).abs() > eps);
                }
            }
        }
    }

    #[test]
    fn corrective_items_satisfy_their_definition((data, v, u) in random_input()) {
        let report = DivExplorer::new(0.05)
            .explore(&data, &v, &u, &[Metric::ErrorRate])
            .unwrap();
        for c in divexplorer::corrective::corrective_items(&report, 0) {
            prop_assert!(c.delta_extended.abs() < c.delta_base.abs());
            prop_assert!(c.corrective_factor > 0.0);
            // The extended itemset must be frequent and contain the item.
            let extended = divexplorer::item::with(&c.base, c.item);
            prop_assert!(report.find(&extended).is_some());
        }
    }

    #[test]
    fn lattice_nodes_mirror_the_report((data, v, u) in random_input()) {
        let report = DivExplorer::new(0.05)
            .explore(&data, &v, &u, &[Metric::ErrorRate])
            .unwrap();
        // Take the longest frequent pattern as the lattice target.
        let Some(idx) = (0..report.len()).max_by_key(|&i| report.items(i).len()) else {
            return Ok(());
        };
        let target = report.items(idx).to_vec();
        let lattice = divexplorer::lattice::sublattice(&report, &target, 0, 0.1).unwrap();
        prop_assert_eq!(lattice.nodes.len(), 1 << target.len());
        for node in &lattice.nodes {
            if node.items.is_empty() {
                prop_assert_eq!(node.delta, 0.0);
            } else {
                let i = report.find(&node.items).unwrap();
                let expected = report.divergence(i, 0);
                if expected.is_nan() {
                    prop_assert!(node.delta.is_nan());
                } else {
                    prop_assert!((node.delta - expected).abs() < 1e-12);
                }
            }
        }
    }
}
