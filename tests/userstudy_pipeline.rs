//! Integration test for the §6.6 bias-injection pipeline (the machinery
//! behind Figure 12): poison a subgroup, train the MLP, verify the bias is
//! learned, and verify DivExplorer surfaces the injected pattern.

use datasets::{bias::inject_bias_in_rows, compas};
use divexplorer::{DivExplorer, Metric, SortBy};
use models::{train_test_split, Classifier, Mlp, MlpParams};

#[test]
fn injected_bias_is_learned_and_recovered() {
    let raw = compas::generate(3000, 21);
    let data = raw.discretize();
    let mut v = raw.v.clone();
    let schema = data.schema();
    let mut injected = vec![
        schema.item_by_name("age", ">45").unwrap(),
        schema.item_by_name("charge", "M").unwrap(),
    ];
    injected.sort_unstable();

    let split = train_test_split(data.n_rows(), 0.4, 21);
    let affected = inject_bias_in_rows(&data, &mut v, &injected, true, &split.train);
    assert!(
        affected.len() > 50,
        "subgroup too small: {}",
        affected.len()
    );

    // Train on poisoned labels with one-hot features.
    let gd = datasets::GeneratedDataset {
        name: "t".into(),
        data: data.clone(),
        v: v.clone(),
        u: vec![false; data.n_rows()],
    };
    let features = gd.features_one_hot();
    let x_train = features.select_rows(&split.train);
    let y_train: Vec<bool> = split.train.iter().map(|&r| v[r]).collect();
    let mlp = Mlp::fit(
        &x_train,
        &y_train,
        &MlpParams {
            epochs: 40,
            ..Default::default()
        },
        21,
    );

    // The model must have absorbed the bias: near-total positive
    // prediction inside the subgroup on the *test* split.
    let test_data = data.select_rows(&split.test);
    let x_test = features.select_rows(&split.test);
    let u_test = mlp.predict_batch(&x_test);
    let v_test: Vec<bool> = split.test.iter().map(|&r| raw.v[r]).collect();
    let in_group: Vec<usize> = (0..test_data.n_rows())
        .filter(|&r| test_data.covers(r, &injected))
        .collect();
    assert!(in_group.len() > 20);
    let positive_rate =
        in_group.iter().filter(|&&r| u_test[r]).count() as f64 / in_group.len() as f64;
    assert!(positive_rate > 0.9, "bias not learned: {positive_rate}");

    // DivExplorer on the unpoisoned test split: the injected pattern must
    // rank at the very top of the FPR divergence (among its Δ-ties).
    let report = DivExplorer::new(0.04)
        .explore(&test_data, &v_test, &u_test, &[Metric::FalsePositiveRate])
        .unwrap();
    let idx = report.find(&injected).expect("injected pattern frequent");
    let delta = report.divergence(idx, 0);
    assert!(
        delta > 0.3,
        "injected pattern should be strongly divergent: {delta}"
    );

    let ranked = report.ranked(0, SortBy::Divergence);
    let rank = ranked.iter().position(|&i| i == idx).unwrap();
    let top_delta = report.divergence(ranked[0], 0);
    assert!(
        delta >= top_delta - 1e-9 || rank < 25,
        "injected pattern buried at rank {rank} (Δ={delta:.3} vs top {top_delta:.3})"
    );
}
