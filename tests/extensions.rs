//! Integration tests for the extension layers: model comparison,
//! neighborhood navigation, sampled Shapley, continuous-statistic
//! divergence, closed/maximal condensation and the explainers, all on
//! generated data with real trained models.

use datasets::DatasetId;
use divexplorer::{
    compare::{compare_models, disagreement_report},
    continuous::explore_statistic,
    neighborhood::neighborhood,
    shapley::{item_contributions, item_contributions_sampled},
    DivExplorer, Metric, SortBy,
};
use models::{
    log_loss, Classifier, GaussianNaiveBayes, GbdtParams, GradientBoostedTrees, RandomForest,
    RandomForestParams,
};

fn trained_pair() -> (datasets::GeneratedDataset, Vec<bool>, Vec<bool>) {
    let gd = DatasetId::Heart.generate_sized(600, 31);
    let x = gd.features();
    let forest = RandomForest::fit(
        &x,
        &gd.v,
        &RandomForestParams {
            n_trees: 6,
            max_depth: Some(6),
            ..Default::default()
        },
        31,
    );
    let boosted = GradientBoostedTrees::fit(
        &x,
        &gd.v,
        &GbdtParams {
            n_rounds: 15,
            ..Default::default()
        },
    );
    let u_a = forest.predict_batch(&x);
    let u_b = boosted.predict_batch(&x);
    (gd, u_a, u_b)
}

#[test]
fn model_comparison_pipeline_on_trained_models() {
    let (gd, u_a, u_b) = trained_pair();
    let cmp = compare_models(&gd.data, &gd.v, &u_a, &u_b, &[Metric::ErrorRate], 0.15).unwrap();
    assert_eq!(cmp.report_a.len(), cmp.report_b.len());
    let gaps = cmp.top_gaps(0, 10);
    assert!(!gaps.is_empty());
    // Gaps are sorted by |gap| and internally consistent.
    assert!(gaps.windows(2).all(|w| w[0].gap.abs() >= w[1].gap.abs()));
    for g in &gaps {
        assert!((g.delta_a - g.delta_b - g.gap).abs() < 1e-12);
        assert_eq!(cmp.gap_of(&g.items, 0), Some(g.gap));
    }

    // Disagreement exploration is itself a valid report.
    let dis = disagreement_report(&gd.data, &u_a, &u_b, 0.15).unwrap();
    let overall = dis.dataset_rate(0);
    assert!((0.0..=1.0).contains(&overall));
}

#[test]
fn neighborhood_navigation_is_consistent_with_the_report() {
    let gd = DatasetId::Compas.generate_sized(1500, 32);
    let report = DivExplorer::new(0.05)
        .explore(&gd.data, &gd.v, &gd.u, &[Metric::FalsePositiveRate])
        .unwrap();
    let top = report.top_k(0, 1, SortBy::Divergence)[0];
    let items = report.items(top).to_vec();
    let n = neighborhood(&report, &items, 0).expect("frequent focus");
    assert_eq!(n.generalizations.len(), items.len());
    for step in &n.generalizations {
        assert_eq!(step.items.len() + 1, items.len());
        let expected = report.divergence_of(&step.items, 0).unwrap();
        assert!((step.delta - expected).abs() < 1e-12);
    }
    for step in &n.specializations {
        assert_eq!(step.items.len(), items.len() + 1);
        assert!(report.find(&step.items).is_some());
        assert!((step.delta_change - (step.delta - n.delta)).abs() < 1e-12);
    }
    // Amplifying/corrective partition the specializations by |Δ| strictly.
    let amp = n.amplifying().len();
    let corr = n.corrective().len();
    assert!(amp + corr <= n.specializations.len());
}

#[test]
fn sampled_shapley_tracks_exact_on_real_patterns() {
    let gd = DatasetId::Compas.generate_sized(2000, 33);
    let report = DivExplorer::new(0.05)
        .explore(&gd.data, &gd.v, &gd.u, &[Metric::FalseNegativeRate])
        .unwrap();
    let mut checked = 0;
    for idx in report.top_k(0, 5, SortBy::AbsDivergence) {
        let items = report.items(idx).to_vec();
        let (Ok(exact), Ok(sampled)) = (
            item_contributions(&report, &items, 0),
            item_contributions_sampled(&report, &items, 0, 600, 42),
        ) else {
            continue;
        };
        for ((i1, c1), (i2, c2)) in exact.iter().zip(&sampled) {
            assert_eq!(i1, i2);
            assert!(
                (c1 - c2).abs() < 0.05,
                "item {i1}: exact {c1} vs sampled {c2}"
            );
        }
        checked += 1;
    }
    assert!(checked >= 3, "checked only {checked} patterns");
}

#[test]
fn continuous_divergence_on_model_losses() {
    let (gd, _, _) = trained_pair();
    let x = gd.features();
    let bayes = GaussianNaiveBayes::fit(&x, &gd.v);
    let losses: Vec<f64> = (0..gd.n_rows())
        .map(|r| log_loss(gd.v[r], bayes.predict_proba(x.row(r))))
        .collect();
    let report = explore_statistic(&gd.data, &losses, 0.1, fpm::Algorithm::FpGrowth);
    assert!(!report.is_empty());
    // The dataset mean matches a direct computation.
    let direct = losses.iter().sum::<f64>() / losses.len() as f64;
    assert!((report.dataset_mean() - direct).abs() < 1e-9);
    // Divergences are internally consistent.
    for idx in report.ranked().into_iter().take(20) {
        let p = &report.patterns()[idx];
        let rows = gd.data.support_set(&p.items);
        let mean = rows.iter().map(|&r| losses[r]).sum::<f64>() / rows.len() as f64;
        assert!((p.moments.mean() - mean).abs() < 1e-9);
    }
}

#[test]
fn condensation_flags_on_a_real_exploration() {
    let gd = DatasetId::Heart.generate_sized(400, 34);
    let db = gd.data.to_transactions();
    let found = fpm::MiningTask::with_params(
        &db,
        fpm::MiningParams::with_min_support_fraction(0.2, db.len()),
    )
    .algorithm(fpm::Algorithm::FpGrowth)
    .run()
    .into_itemsets();
    let closed = fpm::closed::closed_itemsets(&found);
    let maximal = fpm::closed::maximal_itemsets(&found);
    assert!(!closed.is_empty());
    assert!(maximal.len() <= closed.len());
    assert!(closed.len() <= found.len());
    // Spot-check closedness by brute force on a sample.
    for fi in closed.iter().take(10) {
        for other in &found {
            if fi.items.len() + 1 == other.items.len() && fi.is_subset_of(other) {
                assert!(
                    other.support < fi.support,
                    "closure violated for {:?}",
                    fi.items
                );
            }
        }
    }
}

#[test]
fn shap_and_lime_agree_on_the_dominant_feature() {
    // A model dominated by one one-hot feature: both explainers must rank
    // it first for an instance where it is active.
    let gd = DatasetId::Compas.generate_sized(400, 35);
    let x = gd.features_one_hot();
    struct OneFeature(usize);
    impl Classifier for OneFeature {
        fn predict_proba(&self, row: &[f64]) -> f64 {
            0.15 + 0.7 * row[self.0]
        }
    }
    let feature = gd.data.schema().item_by_name("#prior", ">3").unwrap() as usize;
    let model = OneFeature(feature);
    let instance = (0..gd.n_rows())
        .find(|&r| x.get(r, feature) == 1.0)
        .expect("someone has >3 priors");

    let lime = explain::explain_instance(
        &model,
        &x,
        x.row(instance),
        &explain::LimeParams::default(),
        1,
    );
    assert_eq!(lime.top_features(1)[0].0, feature, "LIME misattributed");

    let shap = explain::shap_values(
        &model,
        &x,
        x.row(instance),
        &explain::ShapParams::default(),
        1,
    );
    assert_eq!(shap.top_features(1)[0].0, feature, "SHAP misattributed");
    assert!(shap.top_features(1)[0].1 > 0.0);
}
