//! The §6.5 comparison as an integration test: DivExplorer's exhaustive
//! exploration finds the true length-3 sources of divergence in the
//! artificial dataset; Slice Finder's pruned search stops at their
//! length-2 subsets under default parameters.

use datasets::artificial;
use divexplorer::{DivExplorer, Metric, SortBy};
use models::log_loss;
use slicefinder::{find_slices, SliceFinderParams};

fn setup() -> (datasets::GeneratedDataset, Vec<f64>) {
    let d = artificial::generate(12_000, 7);
    let losses: Vec<f64> =
        d.v.iter()
            .zip(&d.u)
            .map(|(&vi, &ui)| log_loss(vi, if ui { 0.99 } else { 0.01 }))
            .collect();
    (d, losses)
}

fn is_abc_triple(schema: &divexplorer::Schema, items: &[u32]) -> bool {
    if items.len() != 3 {
        return false;
    }
    let names: Vec<String> = items.iter().map(|&i| schema.display_item(i)).collect();
    let zeros = names
        .iter()
        .all(|n| ["a=0", "b=0", "c=0"].contains(&n.as_str()));
    let ones = names
        .iter()
        .all(|n| ["a=1", "b=1", "c=1"].contains(&n.as_str()));
    zeros || ones
}

#[test]
fn divexplorer_finds_the_true_sources() {
    let (d, _) = setup();
    let report = DivExplorer::new(0.01)
        .explore(&d.data, &d.v, &d.u, &[Metric::FalsePositiveRate])
        .unwrap();
    let top = report.top_k(0, 2, SortBy::Divergence);
    for idx in top {
        assert!(
            is_abc_triple(report.schema(), report.items(idx)),
            "expected an a=b=c triple, got {}",
            report.display_itemset(report.items(idx))
        );
    }
}

#[test]
fn slicefinder_default_prunes_at_the_subsets() {
    let (d, losses) = setup();
    let params = SliceFinderParams {
        degree: 3,
        min_size: 120,
        ..Default::default()
    };
    let result = find_slices(&d.data, &losses, &params);
    assert!(!result.slices.is_empty(), "default run should flag slices");
    assert!(
        result.slices.iter().all(|s| s.items.len() <= 2),
        "pruned search must stop before the length-3 sources"
    );
    // The flagged subsets are all subsets of the a=b=c itemsets.
    let schema = d.data.schema();
    for s in &result.slices {
        let names: Vec<String> = s.items.iter().map(|&i| schema.display_item(i)).collect();
        assert!(
            names.iter().all(|n| {
                ["a=0", "b=0", "c=0"].contains(&n.as_str())
                    || names
                        .iter()
                        .all(|m| ["a=1", "b=1", "c=1"].contains(&m.as_str()))
            }),
            "unexpected slice {names:?}"
        );
    }
}

#[test]
fn slicefinder_raised_threshold_reaches_the_sources() {
    let (d, losses) = setup();
    let params = SliceFinderParams {
        degree: 3,
        min_size: 120,
        effect_size_threshold: 0.8,
        ..Default::default()
    };
    let result = find_slices(&d.data, &losses, &params);
    assert!(
        result
            .slices
            .iter()
            .any(|s| is_abc_triple(d.data.schema(), &s.items)),
        "raised threshold should reach a length-3 source"
    );
}

#[test]
fn exhaustive_exploration_evaluates_more_than_pruned_search() {
    let (d, losses) = setup();
    let report = DivExplorer::new(0.01)
        .explore(&d.data, &d.v, &d.u, &[Metric::FalsePositiveRate])
        .unwrap();
    let params = SliceFinderParams {
        degree: 3,
        min_size: 120,
        ..Default::default()
    };
    let result = find_slices(&d.data, &losses, &params);
    // Completeness has a price DivExplorer pays gladly: it covers the full
    // frequent lattice while Slice Finder touches a fraction.
    assert!(report.len() > result.stats.evaluated);
}
