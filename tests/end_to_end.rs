//! End-to-end integration: dataset generation → classifier training →
//! divergence exploration → analysis layers, across crates.

use datasets::DatasetId;
use divexplorer::{DivExplorer, Metric, SortBy};
use models::{Classifier, ConfusionMatrix, RandomForest, RandomForestParams};

#[test]
fn full_pipeline_dataset_model_explorer() {
    // Generate data, train a forest, analyze its errors.
    let gd = DatasetId::Heart.generate_sized(600, 5);
    let x = gd.features();
    let split = models::split::stratified_split(&gd.v, 0.3, 5);
    let x_train = x.select_rows(&split.train);
    let y_train: Vec<bool> = split.train.iter().map(|&i| gd.v[i]).collect();
    let forest = RandomForest::fit(
        &x_train,
        &y_train,
        &RandomForestParams {
            n_trees: 8,
            max_depth: Some(8),
            ..Default::default()
        },
        5,
    );
    let u = forest.predict_batch(&x);

    let cm = ConfusionMatrix::from_labels(&gd.v, &u);
    assert!(
        cm.accuracy() > 0.6,
        "forest should beat chance: {}",
        cm.accuracy()
    );

    let report = DivExplorer::new(0.1)
        .explore(&gd.data, &gd.v, &u, &[Metric::ErrorRate])
        .expect("explore");
    assert!(!report.is_empty());

    // Every reported pattern's tallies must equal a direct scan.
    for idx in report.top_k(0, 10, SortBy::AbsDivergence) {
        let pattern = report.pattern(idx);
        let rows = gd.data.support_set(pattern.items);
        assert_eq!(rows.len() as u64, pattern.support);
        let mut t = 0u32;
        let mut f = 0u32;
        for &r in &rows {
            match Metric::ErrorRate.outcome(gd.v[r], u[r]) {
                divexplorer::Outcome::T => t += 1,
                divexplorer::Outcome::F => f += 1,
                divexplorer::Outcome::Bot => {}
            }
        }
        let counts = pattern.counts.get(0);
        assert_eq!((counts.t, counts.f), (t, f));
    }
}

#[test]
fn all_mining_backends_agree_on_generated_data() {
    let gd = DatasetId::Compas.generate_sized(800, 9);
    let reference = DivExplorer::new(0.08)
        .with_algorithm(fpm::Algorithm::FpGrowth)
        .explore(
            &gd.data,
            &gd.v,
            &gd.u,
            &[Metric::FalsePositiveRate, Metric::FalseNegativeRate],
        )
        .unwrap();
    for algo in [fpm::Algorithm::Apriori, fpm::Algorithm::Eclat] {
        let report = DivExplorer::new(0.08)
            .with_algorithm(algo)
            .explore(
                &gd.data,
                &gd.v,
                &gd.u,
                &[Metric::FalsePositiveRate, Metric::FalseNegativeRate],
            )
            .unwrap();
        assert_eq!(report.len(), reference.len(), "{algo}");
        for p in reference.patterns() {
            let idx = report.find(p.items).unwrap_or_else(|| {
                panic!("{algo} missing {:?}", reference.display_itemset(p.items))
            });
            assert_eq!(report.support(idx), p.support);
            assert_eq!(report.counts(idx), p.counts);
        }
    }
}

#[test]
fn multi_metric_pass_equals_single_metric_passes() {
    let gd = DatasetId::Bank.generate_sized(700, 2);
    let metrics = [
        Metric::FalsePositiveRate,
        Metric::FalseNegativeRate,
        Metric::ErrorRate,
        Metric::Accuracy,
    ];
    let combined = DivExplorer::new(0.1)
        .explore(&gd.data, &gd.v, &gd.u, &metrics)
        .unwrap();
    for (m, &metric) in metrics.iter().enumerate() {
        let single = DivExplorer::new(0.1)
            .explore(&gd.data, &gd.v, &gd.u, &[metric])
            .unwrap();
        assert_eq!(single.len(), combined.len());
        for p in single.patterns() {
            let idx = combined.find(p.items).unwrap();
            assert_eq!(combined.counts(idx).get(m), p.counts.get(0), "{metric}");
        }
    }
}

#[test]
fn error_rate_and_accuracy_divergences_are_opposite() {
    let gd = DatasetId::German.generate_sized(500, 3);
    let report = DivExplorer::new(0.1)
        .explore(
            &gd.data,
            &gd.v,
            &gd.u,
            &[Metric::ErrorRate, Metric::Accuracy],
        )
        .unwrap();
    for idx in 0..report.len() {
        let er = report.divergence(idx, 0);
        let acc = report.divergence(idx, 1);
        assert!((er + acc).abs() < 1e-9, "Δ_ER = -Δ_ACC must hold");
    }
}

#[test]
fn csv_to_divergence_pipeline() {
    // Load a small CSV and run the exploration over it.
    let csv = "\
age,city,label,pred
23,rome,0,1
31,rome,0,1
45,turin,1,1
52,turin,1,0
28,rome,0,0
39,milan,1,1
61,milan,0,0
44,rome,1,1
";
    let table = datasets::csv::parse_csv(csv, ',').expect("parse");
    // Use the label/pred columns, drop them from the feature table.
    let label_col = table.header.iter().position(|h| h == "label").unwrap();
    let pred_col = table.header.iter().position(|h| h == "pred").unwrap();
    let v: Vec<bool> = table.columns[label_col].iter().map(|s| s == "1").collect();
    let u: Vec<bool> = table.columns[pred_col].iter().map(|s| s == "1").collect();
    let features = datasets::csv::CsvTable {
        header: table.header[..2].to_vec(),
        columns: table.columns[..2].to_vec(),
    };
    let data = features.into_dataset(2).expect("dataset");
    let report = DivExplorer::new(0.25)
        .explore(&data, &v, &u, &[Metric::ErrorRate])
        .expect("explore");
    assert!(!report.is_empty());
}
