//! Acceptance tests for bounded execution (the robustness tentpole): a
//! pathologically low support threshold must not hang, panic, or OOM —
//! it must return partial results tagged `Completeness::Truncated` within
//! a small multiple of the budget, and a `CancelToken` fired from another
//! thread must stop the run at its next checkpoint.

use std::time::{Duration, Instant};

use datasets::artificial;
use divexplorer::{DivExplorer, Metric};
use fpm::{Budget, CancelToken, TruncationReason};

/// At support 0 the artificial dataset's lattice has 3^10 − 1 = 59 048
/// frequent itemsets and the level-wise miner takes on the order of a
/// second unbudgeted — far beyond the 100 ms budget.
const PATHOLOGICAL_SUPPORT: f64 = 0.0;

#[test]
fn hundred_ms_budget_truncates_fast_with_partial_results() {
    let d = artificial::generate(50_000, 42);
    let explorer = DivExplorer::new(PATHOLOGICAL_SUPPORT)
        .with_algorithm(fpm::Algorithm::Apriori)
        .with_budget(Budget::unlimited().with_timeout(Duration::from_millis(100)));

    let start = Instant::now();
    let report = explorer
        .explore(&d.data, &d.v, &d.u, &[Metric::FalsePositiveRate])
        .expect("budget exhaustion must not be an error");
    let elapsed = start.elapsed();

    assert!(
        elapsed < Duration::from_millis(500),
        "must stop within one checkpoint interval of the deadline, took {elapsed:?}"
    );
    assert_eq!(
        report.completeness().truncation_reason(),
        Some(TruncationReason::Timeout)
    );
    // Partial results, not error-with-nothing: the first level completes
    // well within the budget.
    assert!(!report.is_empty(), "expected partial results");
    // The partial patterns carry exact statistics (spot-check a single).
    let a1 = d.data.schema().item_by_name("a", "1").unwrap();
    let idx = report.find(&[a1]).expect("level 1 fits any sane budget");
    assert!(report.support_fraction(idx) > 0.4 && report.support_fraction(idx) < 0.6);
}

#[test]
fn cancel_token_fired_from_another_thread_stops_the_run() {
    let d = artificial::generate(50_000, 42);
    let token = CancelToken::new();
    let explorer = DivExplorer::new(PATHOLOGICAL_SUPPORT)
        .with_algorithm(fpm::Algorithm::Apriori)
        .with_cancel_token(token.clone());

    let canceller = std::thread::spawn({
        let token = token.clone();
        move || {
            std::thread::sleep(Duration::from_millis(50));
            token.cancel();
        }
    });

    let start = Instant::now();
    let report = explorer
        .explore(&d.data, &d.v, &d.u, &[Metric::FalsePositiveRate])
        .expect("cancellation must not be an error");
    let elapsed = start.elapsed();
    canceller.join().unwrap();

    assert!(
        elapsed < Duration::from_millis(500),
        "cancel must take effect within one checkpoint interval, took {elapsed:?}"
    );
    assert_eq!(
        report.completeness().truncation_reason(),
        Some(TruncationReason::Cancelled)
    );
}

#[test]
fn parallel_engine_respects_the_same_budget() {
    let d = artificial::generate(50_000, 42);
    let explorer = DivExplorer::new(PATHOLOGICAL_SUPPORT)
        .with_threads(4)
        .with_budget(Budget::unlimited().with_max_itemsets(1_000));

    let report = explorer
        .explore(&d.data, &d.v, &d.u, &[Metric::FalsePositiveRate])
        .expect("budget exhaustion must not be an error");
    assert_eq!(report.len(), 1_000);
    assert_eq!(
        report.completeness().truncation_reason(),
        Some(TruncationReason::ItemsetLimit)
    );
}

#[test]
fn generous_budget_reproduces_the_unbudgeted_report() {
    let d = artificial::generate(2_000, 7);
    let unbudgeted = DivExplorer::new(0.05)
        .explore(&d.data, &d.v, &d.u, &[Metric::FalsePositiveRate])
        .unwrap();
    let budgeted = DivExplorer::new(0.05)
        .with_budget(
            Budget::unlimited()
                .with_timeout(Duration::from_secs(600))
                .with_max_itemsets(u64::MAX),
        )
        .explore(&d.data, &d.v, &d.u, &[Metric::FalsePositiveRate])
        .unwrap();
    assert!(budgeted.is_exploration_complete());
    assert_eq!(budgeted.len(), unbudgeted.len());
    for p in unbudgeted.patterns() {
        let idx = budgeted.find(p.items).unwrap();
        assert_eq!(budgeted.support(idx), p.support);
        assert_eq!(budgeted.counts(idx), p.counts);
    }
}
